#include "serve/wire.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace hpf90d::serve {

namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
}

void put_u32(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xff);
  out += static_cast<char>((v >> 8) & 0xff);
  out += static_cast<char>((v >> 16) & 0xff);
  out += static_cast<char>((v >> 24) & 0xff);
}

std::uint16_t get_u16(const char* p) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint16_t>(static_cast<unsigned char>(p[1]) << 8);
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

/// poll() until fd is readable/writable; returns false on timeout.
bool wait_fd(int fd, short events, int timeout_ms) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    throw WireError(std::string("poll failed: ") + std::strerror(errno));
  }
}

/// Reads exactly `n` bytes into `out` (appending). `allow_eof_at_start`
/// lets a clean close before the first byte report Eof instead of
/// throwing. Timeout mid-read is an error — framing would desynchronize.
ReadStatus read_exact(int fd, std::string& out, std::size_t n, int timeout_ms,
                      bool allow_eof_at_start) {
  std::size_t got = 0;
  char buf[4096];
  while (got < n) {
    if (!wait_fd(fd, POLLIN, got == 0 ? timeout_ms : -1)) {
      if (got == 0) return ReadStatus::Timeout;
      throw WireError("timed out mid-frame");
    }
    const std::size_t want = std::min(n - got, sizeof buf);
    const ssize_t rc = ::recv(fd, buf, want, 0);
    if (rc > 0) {
      out.append(buf, static_cast<std::size_t>(rc));
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0 && allow_eof_at_start) return ReadStatus::Eof;
      throw WireError("peer closed mid-frame");
    }
    if (errno == EINTR) continue;
    throw WireError(std::string("recv failed: ") + std::strerror(errno));
  }
  return ReadStatus::Ok;
}

/// Validates a complete 12-byte header; returns the payload length.
std::uint32_t parse_header(const char* h, MsgType& type) {
  if (std::memcmp(h, kMagic, sizeof kMagic) != 0) {
    throw WireError("bad frame magic");
  }
  const std::uint16_t version = get_u16(h + 4);
  if (version != kWireVersion) {
    throw WireError("unsupported wire version " + std::to_string(version));
  }
  type = static_cast<MsgType>(get_u16(h + 6));
  const std::uint32_t len = get_u32(h + 8);
  if (len > kMaxPayload) {
    throw WireError("oversized frame payload: " + std::to_string(len) + " bytes");
  }
  return len;
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxPayload) {
    throw WireError("refusing to encode oversized payload: " +
                    std::to_string(frame.payload.size()) + " bytes");
  }
  std::string out;
  out.reserve(kHeaderSize + frame.payload.size());
  out.append(kMagic, sizeof kMagic);
  put_u16(out, kWireVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

std::optional<Frame> decode_frame(std::string_view buffer, std::size_t& offset) {
  if (buffer.size() - offset < kHeaderSize) return std::nullopt;
  Frame frame;
  const std::uint32_t len = parse_header(buffer.data() + offset, frame.type);
  if (buffer.size() - offset - kHeaderSize < len) return std::nullopt;
  frame.payload.assign(buffer.data() + offset + kHeaderSize, len);
  offset += kHeaderSize + len;
  return frame;
}

void write_frame(int fd, const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    (void)wait_fd(fd, POLLOUT, -1);
    const ssize_t rc =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (rc >= 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (errno == EINTR) continue;
    throw WireError(std::string("send failed: ") + std::strerror(errno));
  }
}

ReadStatus try_read_frame(int fd, Frame& out, int timeout_ms) {
  std::string header;
  header.reserve(kHeaderSize);
  const ReadStatus st = read_exact(fd, header, kHeaderSize, timeout_ms,
                                   /*allow_eof_at_start=*/true);
  if (st != ReadStatus::Ok) return st;
  out.payload.clear();
  const std::uint32_t len = parse_header(header.data(), out.type);
  if (len > 0) {
    out.payload.reserve(len);
    // the header arrived, so the payload is owed: block until it is here
    (void)read_exact(fd, out.payload, len, -1, /*allow_eof_at_start=*/false);
  }
  return ReadStatus::Ok;
}

Frame read_frame(int fd, int timeout_ms) {
  Frame frame;
  switch (try_read_frame(fd, frame, timeout_ms)) {
    case ReadStatus::Ok: return frame;
    case ReadStatus::Eof: throw WireError("peer closed the connection");
    case ReadStatus::Timeout: throw WireError("timed out waiting for a frame");
  }
  throw WireError("unreachable");
}

}  // namespace hpf90d::serve
