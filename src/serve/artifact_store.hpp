// artifact_store.hpp — content-addressed disk persistence of artifacts.
//
// The daemon's durability tier: api::ArtifactSpill implemented over a
// plain directory tree,
//
//     <root>/layouts/<fnv64(key)>.art    serialized DataLayout
//     <root>/programs/<fnv64(key)>.art   serialized program recipe
//
// Every file embeds its full cache key (length-prefixed) ahead of the
// artifact text; load verifies the embedded key against the requested one,
// so a 64-bit filename collision degrades to a miss instead of serving
// the wrong artifact. Writes go to a temp file in the same directory and
// rename into place — a crashed daemon leaves complete artifacts or
// leftovers, never torn files — and corrupt/unreadable files are treated
// as misses (the session rebuilds and overwrites them).
//
// Thread safety: all methods may be called concurrently (the session's
// worker pool stores layouts from many threads). Loads are lock-free;
// writes serialize on a mutex to keep the temp-name counter simple.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "api/spill.hpp"

namespace hpf90d::serve {

class ArtifactStore : public api::ArtifactSpill {
 public:
  /// Creates <root>/layouts and <root>/programs (throws std::runtime_error
  /// when the tree cannot be created).
  explicit ArtifactStore(std::string root);

  std::optional<compiler::DataLayout> load_layout(const std::string& key) override;
  void store_layout(const std::string& key, const compiler::DataLayout& layout) override;
  void store_program(const std::string& key, const api::ProgramRecipe& recipe) override;
  std::vector<api::ProgramRecipe> load_programs() override;

  [[nodiscard]] const std::string& root() const noexcept { return root_; }

  /// Lifetime I/O counters (diagnostics; surfaced in ServerStats).
  [[nodiscard]] std::size_t layouts_stored() const noexcept {
    return layouts_stored_.load();
  }
  [[nodiscard]] std::size_t layouts_loaded() const noexcept {
    return layouts_loaded_.load();
  }
  [[nodiscard]] std::size_t programs_stored() const noexcept {
    return programs_stored_.load();
  }

  /// On-disk footprint of the store (layouts + programs).
  struct DiskUsage {
    std::uint64_t bytes = 0;
    std::uint64_t files = 0;
  };

  /// Scans both artifact directories (regular files only; in-flight temp
  /// files count too — they occupy the same disk). Unreadable entries are
  /// skipped, so a concurrent rename never fails the scan.
  [[nodiscard]] DiskUsage disk_usage() const;

 private:
  void write_artifact(const std::string& dir, const std::string& key,
                      std::string_view body);

  std::string root_;
  std::mutex write_mutex_;
  std::atomic<std::size_t> layouts_stored_{0};
  std::atomic<std::size_t> layouts_loaded_{0};
  std::atomic<std::size_t> programs_stored_{0};
  std::atomic<std::uint64_t> tmp_seq_{0};
};

}  // namespace hpf90d::serve
