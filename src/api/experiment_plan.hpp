// experiment_plan.hpp — declarative description of a batched experiment.
//
// The paper's §5.2 workflow sweeps directives, problem sizes, and system
// sizes interactively ("select directives from the interface", "vary the
// problem size from the interface"). An ExperimentPlan captures one such
// sweep declaratively as a cross product
//
//     machines x directive variants x problem cases x processor counts
//
// and Session::run executes the whole batch through the compilation and
// layout caches, returning a RunReport.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/spmd_ir.hpp"
#include "core/engine.hpp"
#include "hpf/fold.hpp"
#include "sim/executor.hpp"

namespace hpf90d::api {

/// One directive choice to evaluate (§5.2.1). Empty overrides = use the
/// directives already in the source.
struct DirectiveVariant {
  std::string name;                     // display label, e.g. "(block,*)"
  std::vector<std::string> overrides;   // compile_with_directives payloads
  /// Processor-grid rank forced for this variant; the grid shape at P
  /// processors is the near-square factorization (2 -> 2x2 at P=4, 2x4 at
  /// P=8 — the paper's Laplace grids). nullopt = the compiler's default.
  std::optional<int> grid_rank;
};

/// One problem instance: a named set of scalar bindings.
struct ProblemCase {
  std::string name;  // display label, e.g. "n=256"
  front::Bindings bindings;
};

/// One point of a *scaled* problem axis: the problem is coupled to a
/// specific processor count instead of being crossed with the nprocs list
/// (scaled-speedup / weak-scaling studies, where the problem grows with
/// the machine).
struct ScaledCase {
  ProblemCase problem;
  int nprocs = 0;
};

class ExperimentPlan {
 public:
  explicit ExperimentPlan(std::string title = "experiment")
      : title_(std::move(title)) {}

  // --- builder --------------------------------------------------------------
  ExperimentPlan& source(std::string hpf_source);
  ExperimentPlan& machines(std::vector<std::string> names);
  ExperimentPlan& add_machine(std::string name);
  ExperimentPlan& nprocs(std::vector<int> counts);
  ExperimentPlan& add_variant(DirectiveVariant v);
  ExperimentPlan& add_variant(std::string name, std::vector<std::string> overrides,
                              std::optional<int> grid_rank = std::nullopt);
  ExperimentPlan& add_problem(std::string name, front::Bindings bindings);
  /// Adds one problem case per size, labelled "<label_prefix><size>", with
  /// bindings produced by `make_bindings(size)`. Tailored to the suite's
  /// BenchmarkApp shape: problems_from(app.problem_sizes, app.bindings)
  /// replaces the add_problem loop every caller used to write.
  ExperimentPlan& problems_from(
      const std::vector<long long>& sizes,
      const std::function<front::Bindings(long long)>& make_bindings,
      std::string_view label_prefix = "n=");
  /// Couples the problem axis to the processor count: for every base size
  /// s and every swept processor count P, ONE point with the scaled size
  /// s*P, labelled "<label_prefix><s*P>", replaces the problems x nprocs
  /// cross product (weak scaling: per-processor work stays constant while
  /// the machine grows). The nprocs axis must be set *before* this call —
  /// the pairs are materialized immediately, so the plan stays a plain
  /// declarative value (and stays serializable for the experiment
  /// service). Mutually exclusive with add_problem/problems_from.
  ExperimentPlan& problems_scaled_by_nprocs(
      const std::vector<long long>& base_sizes,
      const std::function<front::Bindings(long long scaled)>& make_bindings,
      std::string_view label_prefix = "n=");

  /// Installs pre-materialized scaled pairs verbatim (the plan-transport
  /// decoder's entry; problems_scaled_by_nprocs is the builder's).
  ExperimentPlan& scaled_cases(std::vector<ScaledCase> cases);

  /// Simulated-measurement repetitions; 0 disables measurement entirely
  /// (predict-only sweep, the paper's interactive mode).
  ExperimentPlan& runs(int n);
  ExperimentPlan& compiler_options(compiler::CompilerOptions opts);
  ExperimentPlan& predict_options(core::PredictOptions opts);
  ExperimentPlan& sim_options(sim::SimOptions opts);

  // --- accessors (defaults applied) -----------------------------------------
  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] const std::string& program_source() const noexcept { return source_; }
  [[nodiscard]] const std::vector<std::string>& machine_names() const;
  [[nodiscard]] const std::vector<int>& nprocs_list() const;
  [[nodiscard]] const std::vector<DirectiveVariant>& variants() const;
  [[nodiscard]] const std::vector<ProblemCase>& problems() const;
  /// True when the problem axis is coupled to nprocs; Session::run then
  /// sweeps machines x variants x scaled_cases_list() instead of the
  /// four-way cross product.
  [[nodiscard]] bool scaled_by_nprocs() const noexcept { return !scaled_.empty(); }
  [[nodiscard]] const std::vector<ScaledCase>& scaled_cases_list() const noexcept {
    return scaled_;
  }
  [[nodiscard]] int measure_runs() const noexcept { return runs_; }
  [[nodiscard]] const compiler::CompilerOptions& compiler_opts() const noexcept {
    return compiler_opts_;
  }
  [[nodiscard]] const core::PredictOptions& predict_opts() const noexcept {
    return predict_opts_;
  }
  [[nodiscard]] const sim::SimOptions& sim_opts() const noexcept { return sim_opts_; }

  /// Number of sweep points Session::run will execute.
  [[nodiscard]] std::size_t point_count() const;

  /// Throws std::invalid_argument when the plan cannot run (no source,
  /// non-positive processor count, duplicate variant/problem names).
  void validate() const;

 private:
  std::string title_;
  std::string source_;
  std::vector<std::string> machines_;        // default: {"ipsc860"}
  std::vector<int> nprocs_;                  // default: {1}
  std::vector<DirectiveVariant> variants_;   // default: one pass-through variant
  std::vector<ProblemCase> problems_;        // default: one empty-bindings case
  std::vector<ScaledCase> scaled_;           // non-empty = scaled problem axis
  int runs_ = 3;
  compiler::CompilerOptions compiler_opts_;
  core::PredictOptions predict_opts_;
  sim::SimOptions sim_opts_;
};

}  // namespace hpf90d::api
