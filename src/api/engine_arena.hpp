// engine_arena.hpp — per-worker reusable execution state for sweep runs.
//
// PR 2's worker pool still constructed a fresh InterpretationEngine (and,
// for measured points, one Executor per simulated run) at every sweep
// point: scratch clocks, per-AAU metric tables, scalar environments, and
// simulator storage were allocated and thrown away thousands of times per
// design study. An EngineArena is the fix: each Session::run worker owns
// one, and every point it executes rebinds the same engine/executor pair,
// so the steady-state hot path performs no per-point heap allocation while
// producing bit-identical records (rebinding is defined as equivalent to
// fresh construction).
//
// The arena itself is not thread-safe — it is one worker's private state.
#pragma once

#include <span>

#include "core/batch_engine.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"

namespace hpf90d::obs {
class Sink;
}  // namespace hpf90d::obs

namespace hpf90d::api {

class EngineArena {
 public:
  /// Full prediction (total plus the per-phase decomposition) for one
  /// configuration against a prebuilt layout. Identical arithmetic to
  /// core::predict; callers are expected to have validated critical
  /// variables for (prog, bindings) already (Session::run does so once per
  /// (variant, problem) pair instead of once per point). The returned
  /// reference is the arena's scratch result, valid until the next
  /// predict call.
  [[nodiscard]] const core::PredictionResult& predict(
      const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
      const machine::MachineModel& machine, const core::PredictOptions& options,
      const front::Bindings& bindings);

  /// Predicted total time only.
  [[nodiscard]] double predict_total(const compiler::CompiledProgram& prog,
                                     const compiler::DataLayout& layout,
                                     const machine::MachineModel& machine,
                                     const core::PredictOptions& options,
                                     const front::Bindings& bindings);

  /// Simulated measurement through the reusable executor (one rebind per
  /// run instead of one Executor construction per run).
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const compiler::DataLayout& layout,
                                            const machine::MachineModel& machine,
                                            const sim::SimOptions& options, int runs,
                                            const front::Bindings& bindings);

  /// Like measure(), but into the arena's scratch MeasuredResult
  /// (Simulator::measure_into): the sweep hot loop's measurement allocates
  /// nothing per point in steady state. The returned reference is valid
  /// until the next measure/measure_into call on this arena.
  [[nodiscard]] const sim::MeasuredResult& measure_into(
      const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
      const machine::MachineModel& machine, const sim::SimOptions& options, int runs,
      const front::Bindings& bindings);

  /// Lockstep batch prediction: fills the arena's batch scratch with one
  /// PredictionResult per lane (byte-identical to calling predict() lane by
  /// lane) and returns it, valid until the next predict_batch call. When
  /// the lockstep walk runs, `lockstep` is set and `stats` accumulates its
  /// effectiveness counters; when BatchEngine declines (traced run, too few
  /// lanes, program without complete cost bytecode) the arena falls back to
  /// a per-lane scalar loop, clears `lockstep`, and leaves `stats` alone.
  /// `deferred` (optional) selects BatchEngine's eviction-export mode: see
  /// batch_engine.hpp — exported lanes' result slots are left unwritten and
  /// the caller re-batches or replays them. Only consulted when the
  /// lockstep walk ran (the scalar fallback prices every lane).
  [[nodiscard]] std::span<const core::PredictionResult> predict_batch(
      const compiler::CompiledProgram& prog, const machine::MachineModel& machine,
      const core::PredictOptions& options, std::span<const core::BatchLane> lanes,
      bool& lockstep, core::BatchRunStats& stats,
      std::vector<core::EvictedLane>* deferred = nullptr);

  /// Batched measurement companion to predict_batch: measures every lane
  /// through the reusable executor into the arena's scratch vector
  /// (Simulator::measure_batch_into), bit-identical to per-lane
  /// measure_into. The returned span is valid until the next
  /// measure/measure_into/measure_batch_into call.
  [[nodiscard]] std::span<const sim::MeasuredResult> measure_batch_into(
      const compiler::CompiledProgram& prog, const machine::MachineModel& machine,
      const sim::SimOptions& options, int runs,
      std::span<const core::BatchLane> lanes);

  /// Attaches a tracing sink (nullptr detaches, the default): batched
  /// measurements record obs::Phase::MeasureBatch spans and the lockstep
  /// engine records LockstepWindow spans. Results never change.
  void set_trace(obs::Sink* sink) noexcept;

 private:
  obs::Sink* obs_sink_ = nullptr;  // measure-batch span destination
  core::InterpretationEngine engine_;
  core::BatchEngine batch_engine_;
  sim::Executor executor_;
  core::PredictionResult prediction_;  // reused across points
  sim::MeasuredResult measured_;       // reused across points (measure_into)
  std::vector<core::PredictionResult> batch_predictions_;  // predict_batch scratch
  std::vector<sim::MeasuredResult> batch_measured_;        // measure_batch_into scratch
  std::vector<const front::Bindings*> lane_bindings_;      // measure_batch_into scratch
  std::vector<const compiler::DataLayout*> lane_layouts_;  // measure_batch_into scratch
};

}  // namespace hpf90d::api
