#include "api/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <map>
#include <thread>
#include <utility>

#include "api/engine_arena.hpp"
#include "api/experiment_plan.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "support/text.hpp"

namespace hpf90d::api {

namespace {

/// FNV-1a 64-bit: cheap, stable fingerprint used to pick a cache shard and
/// to compact the program key. The program key also embeds the source
/// length, so a collision needs same-length inputs.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string program_key(std::string_view source,
                        const std::vector<std::string>& overrides,
                        const compiler::CompilerOptions& options) {
  std::string key = support::strfmt("%016llx:%zu:%d:%.17g",
                                    static_cast<unsigned long long>(fnv1a64(source)),
                                    source.size(), options.message_vectorization ? 1 : 0,
                                    options.default_mask_probability);
  for (const auto& o : overrides) {
    key += '\x1f';
    key += o;
  }
  return key;
}

std::size_t shard_of(std::string_view key, std::size_t shard_count) {
  return static_cast<std::size_t>(fnv1a64(key)) % shard_count;
}

}  // namespace

Session::ProgramHandle Session::compile(std::string_view source,
                                        const compiler::CompilerOptions& options) {
  return compile_cached(source, {}, options);
}

Session::ProgramHandle Session::compile_with_directives(
    std::string_view source, const std::vector<std::string>& overrides,
    const compiler::CompilerOptions& options) {
  return compile_cached(source, overrides, options);
}

Session::ProgramHandle Session::compile_cached(std::string_view source,
                                               const std::vector<std::string>& overrides,
                                               const compiler::CompilerOptions& options) {
  const std::string key = program_key(source, overrides, options);
  ProgramShard& shard = program_shards_[shard_of(key, kShards)];

  // Per-entry once semantics: the placeholder future is inserted under the
  // shard lock and the compiler runs OUTSIDE it — a concurrent compile of
  // the same source waits on the future and then hits (each unique key
  // misses exactly once), while distinct keys that collide into this shard
  // compile in parallel. This mirrors LayoutStore::get_or_build minus the
  // LRU machinery; unlike there, the failure-path erase below needs no
  // owner check because nothing but clear_program_cache() (documented
  // non-racing) can remove a placeholder. If this cache ever gains
  // eviction, fold it into LayoutStore's owner-guarded implementation
  // instead of growing a second copy.
  std::promise<ProgramHandle> promise;
  std::shared_future<ProgramHandle> future;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      future = it->second;
    } else {
      ++stats_.compile_misses;
      shard.map.emplace(key, promise.get_future().share());
    }
  }
  if (future.valid()) {
    ProgramHandle shared = future.get();  // rethrows a failed build
    // counted only on success, so a failed shared build leaves no spurious
    // hit behind (misses = compilation attempts, hits = served results)
    ++stats_.compile_hits;
    return shared;
  }

  try {
    auto prog = std::make_shared<compiler::CompiledProgram>(
        overrides.empty()
            ? compiler::compile(source, options)
            : compiler::compile_with_directives(source, overrides, options));
    promise.set_value(prog);
    // Write-behind the recipe so a restarted session can warm_start this
    // entry. Spill failures must not fail the compile.
    if (spill_) {
      try {
        spill_->store_program(key, ProgramRecipe{std::string(source), overrides, options});
      } catch (...) {
      }
    }
    return prog;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.erase(key);  // the next lookup retries the compilation
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

LayoutStore::LayoutPtr Session::layout_for(const compiler::CompiledProgram& prog,
                                           const front::Bindings& bindings,
                                           const compiler::LayoutOptions& lo) const {
  // Content-addressed key: two structurally identical programs (identical
  // directives, symbols, aliases) share one entry regardless of who owns
  // them, and the entry outlives both (DataLayout is self-contained).
  std::string key;
  return layout_for(prog, bindings, lo, key);
}

LayoutStore::LayoutPtr Session::layout_for(const compiler::CompiledProgram& prog,
                                           const front::Bindings& bindings,
                                           const compiler::LayoutOptions& lo,
                                           std::string& key_scratch) const {
  // The digest streams the fingerprint bytes without building them; the
  // string key is only materialized (into the worker's scratch buffer) when
  // the store misses and needs a spill address.
  return layout_for(prog, bindings, lo, key_scratch,
                    compiler::layout_fingerprint_digest(prog, bindings, lo));
}

LayoutStore::LayoutPtr Session::layout_for(const compiler::CompiledProgram& prog,
                                           const front::Bindings& bindings,
                                           const compiler::LayoutOptions& lo,
                                           std::string& key_scratch,
                                           const compiler::LayoutDigest& digest) const {
  // Warm path first: a resident digest resolves without constructing the
  // key/builder std::functions below (whose captures spill to the heap).
  if (LayoutStore::LayoutPtr hit = layout_store_.try_get(digest)) return hit;
  return layout_store_.get_or_build(
      digest,
      [&]() -> const std::string& {
        compiler::layout_fingerprint_into(key_scratch, prog, bindings, lo);
        return key_scratch;
      },
      [&] { return compiler::make_layout(prog, bindings, lo); });
}

std::shared_ptr<const compiler::SeededValues> Session::seed_for(
    const compiler::CompiledProgram& prog, const compiler::LayoutDigestState& prefix,
    const front::Bindings& bindings) const {
  // The prefix digest covers the binding values and the program structure;
  // compile_id is folded in as well so hand-built programs with an empty
  // structure fingerprint still get distinct entries.
  const std::pair<std::uint64_t, std::uint64_t> key{
      prefix.a ^ (prog.compile_id * 0x9e3779b97f4a7c15ULL), prefix.b};
  {
    const std::lock_guard<std::mutex> lock(seed_mutex_);
    if (const auto it = seed_memo_.find(key); it != seed_memo_.end()) return it->second;
  }
  auto seeds = std::make_shared<const compiler::SeededValues>(
      compiler::seed_values(prog.symbols, bindings));
  const std::lock_guard<std::mutex> lock(seed_mutex_);
  // Keep the first published entry on a race — callers may already hold it.
  return seed_memo_.try_emplace(key, std::move(seeds)).first->second;
}

CacheStats Session::cache_stats() const noexcept {
  const LayoutStore::Counters layouts = layout_store_.counters();
  return {stats_.compile_hits.load(), stats_.compile_misses.load(), layouts.hits,
          layouts.misses, layouts.evictions, layouts.spill_hits,
          layout_store_.capacity()};
}

core::PredictionResult Session::predict(const ProgramHandle& prog,
                                        const RunConfig& config) {
  return predict(*prog, config);
}

sim::MeasuredResult Session::measure(const ProgramHandle& prog, const RunConfig& config) {
  return measure(*prog, config);
}

Comparison Session::compare(const ProgramHandle& prog, const RunConfig& config) {
  return compare(*prog, config);
}

core::PredictionResult Session::predict(const compiler::CompiledProgram& prog,
                                        const RunConfig& config) const {
  core::require_critical_complete(prog, config.bindings);
  const LayoutStore::LayoutPtr layout =
      layout_for(prog, config.bindings, layout_options(config));
  // core::predict's layout overload re-validates critical variables; call
  // the engine directly so the (potentially expensive) analysis runs once.
  core::InterpretationEngine engine(prog, *layout, machine(config.machine),
                                    config.predict, config.bindings);
  return engine.interpret();
}

sim::MeasuredResult Session::measure(const compiler::CompiledProgram& prog,
                                     const RunConfig& config) const {
  core::require_critical_complete(prog, config.bindings);
  const LayoutStore::LayoutPtr layout =
      layout_for(prog, config.bindings, layout_options(config));
  const sim::Simulator simulator(machine(config.machine));
  return simulator.measure(prog, config.bindings, *layout, config.sim, config.runs);
}

Comparison Session::compare(const compiler::CompiledProgram& prog,
                            const RunConfig& config) const {
  Comparison out;
  out.estimated = predict(prog, config).total;
  const sim::MeasuredResult measured = measure(prog, config);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

void Session::set_trace_sink(obs::Sink* sink) {
  obs_ = sink;
  layout_store_.set_trace(sink);
}

RunReport Session::run(const ExperimentPlan& plan, const RunOptions& options) {
  plan.validate();
  // Run-scoped spans go to the per-run sink when one is set, else to the
  // session sink. The layout store keeps the session sink either way: its
  // set_trace is not safe against concurrent runs, and runs may overlap.
  obs::Sink* const trace = options.trace != nullptr ? options.trace : obs_;
  const auto t0 = std::chrono::steady_clock::now();
  const CacheStats before = cache_stats();
  // After the snapshot: evictions triggered by installing this run's
  // capacity belong to this run's reported cache stats.
  if (options.layout_cache_capacity) {
    set_layout_cache_capacity(*options.layout_cache_capacity);
  }

  RunReport report;
  report.title = plan.title();

  // fail fast on unknown names, before any point of the sweep runs
  for (const auto& machine_name : plan.machine_names()) (void)machine(machine_name);

  // Compile every (machine, variant) pair serially, replicating the serial
  // sweep's cache-call pattern (each variant misses once, later machines
  // hit) so report.cache is identical for every worker count.
  std::vector<ProgramHandle> variant_progs(plan.variants().size());
  for (std::size_t m = 0; m < plan.machine_names().size(); ++m) {
    for (std::size_t v = 0; v < plan.variants().size(); ++v) {
      const auto& variant = plan.variants()[v];
      const obs::Span compile_span(trace, obs::Phase::Compile, v);
      variant_progs[v] =
          variant.overrides.empty()
              ? compile(plan.program_source(), plan.compiler_opts())
              : compile_with_directives(plan.program_source(), variant.overrides,
                                        plan.compiler_opts());
    }
  }

  // Critical-variable validation depends only on (program, bindings), so it
  // is hoisted out of the sweep: once per (variant, problem) pair instead of
  // once (or twice) per point, and every diagnostic fires before any thread
  // starts. The verdict is further memoized across run() calls — the
  // analysis reads only which names are bound, never their values.
  const auto check_critical = [this](const compiler::CompiledProgram& prog,
                                     const front::Bindings& bindings) {
    std::string key = std::to_string(prog.compile_id);
    for (const auto& [name, value] : bindings.values()) {
      key += '\x1f';
      key += name;
    }
    {
      const std::lock_guard<std::mutex> lock(critical_mutex_);
      const auto it = critical_memo_.find(key);
      if (it != critical_memo_.end()) {
        if (it->second.empty()) return;
        throw support::CompileError(it->second);
      }
    }
    try {
      core::require_critical_complete(prog, bindings);
    } catch (const support::CompileError& e) {
      const std::lock_guard<std::mutex> lock(critical_mutex_);
      critical_memo_.emplace(std::move(key), e.what());
      throw;
    }
    const std::lock_guard<std::mutex> lock(critical_mutex_);
    critical_memo_.emplace(std::move(key), std::string());
  };
  for (std::size_t v = 0; v < plan.variants().size(); ++v) {
    if (plan.scaled_by_nprocs()) {
      for (const auto& sc : plan.scaled_cases_list()) {
        check_critical(*variant_progs[v], sc.problem.bindings);
      }
    } else {
      for (const auto& problem : plan.problems()) {
        check_critical(*variant_progs[v], problem.bindings);
      }
    }
  }

  // Flatten the cross product in sweep order; records are assembled by
  // each point's `record` slot (its plan-order index), so the report
  // ordering is independent of scheduling — and of the divergence-aware
  // reorder below, which permutes `points` but never `record`.
  struct Point {
    const std::string* machine = nullptr;        // registry name (for the record)
    const machine::MachineModel* mach = nullptr; // resolved once per machine
    std::size_t variant = 0;
    const ProblemCase* problem = nullptr;
    int nprocs = 0;
    std::size_t record = 0;   // plan-order index into report.records
    std::uint64_t sig = 0;    // control-flow signature (order_points only)
  };
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  constexpr std::size_t kChunkGranule = 256;
  std::vector<Point> points;
  std::vector<Chunk> chunks;
  {
    const obs::Span sched_span(trace, obs::Phase::ChunkSchedule, plan.point_count());
  points.reserve(plan.point_count());
  for (const auto& machine_name : plan.machine_names()) {
    // one registry lookup per machine instead of one per point
    const machine::MachineModel* mach = &machine(machine_name);
    for (std::size_t v = 0; v < plan.variants().size(); ++v) {
      if (plan.scaled_by_nprocs()) {
        // Scaled axis (weak scaling): the problem is already coupled to its
        // processor count, so the pairs replace the problems x nprocs product.
        for (const auto& sc : plan.scaled_cases_list()) {
          points.push_back(Point{&machine_name, mach, v, &sc.problem, sc.nprocs});
        }
      } else {
        for (const auto& problem : plan.problems()) {
          for (const int np : plan.nprocs_list()) {
            points.push_back(Point{&machine_name, mach, v, &problem, np});
          }
        }
      }
    }
  }
  for (std::size_t i = 0; i < points.size(); ++i) points[i].record = i;
  report.records.resize(points.size());

  if (options.order_points && points.size() > 1) {
    // Signature: FNV-style fold of the critical-variable values a problem's
    // bindings resolve to (the variables whose values steer control flow —
    // exactly what makes lanes diverge). One fold per (variant, problem);
    // nprocs and machine never enter the signature because they never
    // steer the walk. Traced-but-unfoldable criticals hash a sentinel —
    // grouping quality only, never correctness.
    const auto mix64 = [](std::uint64_t h, std::uint64_t v) {
      return (h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4))) *
             0x2545f4914f6cdd1dULL;
    };
    std::map<std::pair<std::size_t, const ProblemCase*>, std::uint64_t> sigs;
    for (Point& pt : points) {
      const auto key = std::make_pair(pt.variant, pt.problem);
      auto it = sigs.find(key);
      if (it == sigs.end()) {
        const compiler::CompiledProgram& prog = *variant_progs[pt.variant];
        const core::CriticalVariableReport cr =
            core::analyze_critical(prog, pt.problem->bindings);
        const compiler::SeededValues sv =
            compiler::seed_values(prog.symbols, pt.problem->bindings);
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (const std::string& name : cr.critical) {
          const int id = prog.symbols.find(name);
          std::uint64_t bits = 0x9e3779b97f4a7c15ULL;  // unresolved sentinel
          for (const auto& [s, value] : sv.defined) {
            if (s == id) {
              std::memcpy(&bits, &value, sizeof bits);
              break;
            }
          }
          h = mix64(h, bits);
        }
        it = sigs.emplace(key, h).first;
      }
      pt.sig = it->second;
    }
    // Sort each maximal (machine, variant) segment — the unit the chunk
    // partition below never crosses — by (signature, plan order). The plan
    // -order tiebreak keeps equal-bindings points adjacent (they share a
    // signature and were contiguous), preserving the per-problem digest
    // -prefix and seed memo hits of the unsorted walk.
    for (std::size_t i = 0; i < points.size();) {
      std::size_t j = i + 1;
      while (j < points.size() && points[j].mach == points[i].mach &&
             points[j].variant == points[i].variant) {
        ++j;
      }
      std::sort(points.begin() + static_cast<std::ptrdiff_t>(i),
                points.begin() + static_cast<std::ptrdiff_t>(j),
                [](const Point& a, const Point& b) {
                  return a.sig != b.sig ? a.sig < b.sig : a.record < b.record;
                });
      i = j;
    }
  }

  // Partition the sweep into chunks: maximal runs of consecutive points
  // sharing (compiled program, machine) — the lockstep lane contract —
  // capped at a fixed granule. The cap is deliberately a constant, NOT
  // batch_size, so the partition (and with it divergence, re-compaction,
  // and replay behaviour) depends only on the plan — identical for every
  // batch size, worker count, and SIMD width. Lockstep batching happens
  // *inside* a chunk in windows of at most batch_size lanes; batch_size <=
  // 1 and the legacy engine path degenerate to single-point windows, i.e.
  // exactly the scalar sweep.
  chunks.reserve(points.size() / kChunkGranule + 1);
  for (std::size_t i = 0; i < points.size();) {
    std::size_t j = i + 1;
    while (j < points.size() && j - i < kChunkGranule &&
           points[j].mach == points[i].mach && points[j].variant == points[i].variant) {
      ++j;
    }
    chunks.push_back(Chunk{i, j});
    i = j;
  }
  }  // ChunkSchedule span closes here

  const std::size_t lane_width =
      options.reuse_engines && options.batch_size > 1
          ? static_cast<std::size_t>(options.batch_size)
          : 1;
  const bool compact = options.compact_lanes && lane_width > 1;
  // RunRecord reads only totals and phase sums, never the per-AAU /
  // per-processor tables, so the sweep predicts lean (identical phase
  // arithmetic, no table copies) — except under tracing, which needs the
  // full result.
  core::PredictOptions sweep_predict = plan.predict_opts();
  sweep_predict.detailed = sweep_predict.trace;
  sweep_predict.speculate_branches = options.speculate_branches;
  // Re-compaction rounds are self-limiting — every lockstep window retires
  // at least its lead lane, so the deferred pool strictly shrinks — but a
  // cap stops pathological regroup chains early (the remainder replays
  // scalar, the pre-compaction behaviour).
  constexpr int kMaxCompactionRounds = 8;

  // Batch telemetry accumulates through order-independent integer sums, so
  // RunReport::batch is deterministic under any worker interleaving.
  std::atomic<std::size_t> batched_points{0};
  std::atomic<std::size_t> scalar_points{0};
  std::atomic<std::size_t> replayed_points{0};
  std::atomic<std::uint64_t> ir_visits{0};
  std::atomic<std::uint64_t> lane_visits{0};
  std::atomic<std::uint64_t> evicted_lanes{0};
  std::atomic<std::uint64_t> refilled_lanes{0};
  std::atomic<std::uint64_t> simd_stripes{0};
  std::atomic<std::uint64_t> speculated_branches{0};
  std::atomic<std::uint64_t> speculated_lanes{0};

  // Legacy per-point-engine path (RunOptions::reuse_engines = false): PR
  // 2's behaviour, kept as the bench baseline.
  const auto run_point = [&](std::size_t i) {
    const Point& pt = points[i];
    const auto& variant = plan.variants()[pt.variant];

    RunRecord rec;
    rec.machine = *pt.machine;
    rec.variant = variant.name;
    rec.problem = pt.problem->name;
    rec.nprocs = pt.nprocs;
    const compiler::CompiledProgram& prog = *variant_progs[pt.variant];
    RunConfig cfg;
    cfg.machine = *pt.machine;
    cfg.nprocs = pt.nprocs;
    if (variant.grid_rank) {
      cfg.grid_shape =
          compiler::ProcGrid::factorized(pt.nprocs, *variant.grid_rank).shape;
    }
    cfg.bindings = pt.problem->bindings;
    cfg.runs = plan.measure_runs();
    cfg.predict = sweep_predict;
    cfg.sim = plan.sim_opts();
    const core::PredictionResult pred = predict(prog, cfg);
    rec.comparison.estimated = pred.total;
    rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
    if (plan.measure_runs() > 0) {
      const sim::MeasuredResult measured = measure(prog, cfg);
      rec.comparison.measured_mean = measured.stats.mean;
      rec.comparison.measured_min = measured.stats.min;
      rec.comparison.measured_max = measured.stats.max;
      rec.comparison.measured_stddev = measured.stats.stddev;
      rec.measured = true;
    }
    report.records[points[i].record] = std::move(rec);
  };

  // One deferred entry per evicted lane awaiting re-batch: `key` groups
  // lanes that diverged identically (core::EvictedLane), `offset` indexes
  // the chunk's lane table.
  struct DeferredPoint {
    std::uint64_t key = 0;
    std::uint32_t offset = 0;
  };
  // One lane in the SESSION-WIDE divergence pool: a rebatchable lane its
  // own chunk could not refill (lone divergence key, or the compaction
  // round cap). Instead of replaying scalar it is exported here — with its
  // layout/seed keep-alives — so equal-path lanes evicted from DIFFERENT
  // chunks of the same (program, machine) group can re-enter lockstep
  // together after the chunk barrier. `point` indexes the sweep's `points`
  // table (which also yields bindings, machine, and the record slot).
  struct PoolLane {
    std::uint64_t key = 0;
    std::size_t point = 0;
    LayoutStore::LayoutPtr layout;
    std::shared_ptr<const compiler::SeededValues> seed;
  };
  std::vector<PoolLane> divergence_pool;
  std::mutex pool_mutex;
  // Worker-owned state reused across chunks (no per-chunk allocation in
  // steady state).
  struct WorkerScratch {
    EngineArena arena;
    std::vector<core::BatchLane> lanes;           // chunk lanes, offset order
    std::vector<LayoutStore::LayoutPtr> layouts;  // keep-alives, offset order
    std::vector<core::BatchLane> window;          // regrouped re-batch windows
    std::vector<core::EvictedLane> evictions;     // per-window export
    std::vector<DeferredPoint> deferred;          // this round's regroup pool
    std::vector<DeferredPoint> deferred_next;     // evictions feeding next round
    std::vector<std::size_t> scalar_replay;       // offsets replaying scalar
    std::vector<PoolLane> pool_out;               // lanes exported to the session pool
    std::vector<std::shared_ptr<const compiler::SeededValues>> seeds;  // keep-alives
    std::string layout_key;
  };

  // One worker claim = one chunk. The chunk runs as a stream of lockstep
  // windows: fresh points in point order first, then re-compaction rounds
  // that regroup evicted lanes by divergence key and give them a fresh
  // lockstep batch, and finally scalar replays for whatever could not be
  // regrouped. Records are assembled by point index and every point's
  // arithmetic is bit-identical on every path, so the record payload is
  // byte-identical for any batch size, worker count, or compaction setting.
  const auto run_chunk = [&](const Chunk& c, WorkerScratch& ws) {
    const std::size_t n = c.end - c.begin;
    if (!options.reuse_engines) {
      for (std::size_t i = c.begin; i < c.end; ++i) run_point(i);
      scalar_points.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    const Point& p0 = points[c.begin];
    const auto& variant = plan.variants()[p0.variant];
    const compiler::CompiledProgram& prog = *variant_progs[p0.variant];
    const machine::MachineModel& mach = *p0.mach;
    EngineArena& arena = ws.arena;
    arena.set_trace(trace);  // two stores per chunk; spans stay disabled when null

    // Layout lookups happen per point, in point order — exactly one lookup
    // per point for every batch size and compaction setting, which keeps
    // report.cache identical across them all.
    ws.lanes.clear();
    ws.layouts.clear();
    ws.seeds.clear();
    // The digest's (program, bindings) prefix is memoized per problem: a
    // chunk walks problems × nprocs with equal bindings adjacent, so warm
    // points finish a captured prefix state instead of re-hashing the
    // whole binding set. The same per-problem boundary keys the seed memo —
    // lanes carry the precomputed parameter fold.
    const front::Bindings* prefix_of = nullptr;
    compiler::LayoutDigestState prefix{};
    const compiler::SeededValues* seed = nullptr;
    for (std::size_t i = c.begin; i < c.end; ++i) {
      const Point& pt = points[i];
      compiler::LayoutOptions lo;
      lo.nprocs = pt.nprocs;
      if (variant.grid_rank) {
        lo.grid_shape =
            compiler::ProcGrid::factorized(pt.nprocs, *variant.grid_rank).shape;
      }
      if (&pt.problem->bindings != prefix_of) {
        prefix = compiler::layout_fingerprint_prefix(prog, pt.problem->bindings);
        prefix_of = &pt.problem->bindings;
        ws.seeds.push_back(seed_for(prog, prefix, pt.problem->bindings));
        seed = ws.seeds.back().get();
      }
      ws.layouts.push_back(layout_for(prog, pt.problem->bindings, lo, ws.layout_key,
                                      compiler::layout_fingerprint_finish(prefix, lo)));
      ws.lanes.push_back(
          core::BatchLane{ws.layouts.back().get(), &pt.problem->bindings, seed});
    }

    // Local tallies, flushed to the shared atomics once per chunk.
    std::size_t batched_n = 0, scalar_n = 0, replayed_n = 0;
    std::uint64_t ir_n = 0, lanes_n = 0, evicted_n = 0, refilled_n = 0, stripes_n = 0;
    std::uint64_t spec_br_n = 0, spec_lanes_n = 0;

    const auto assemble = [&](std::size_t off, const core::PredictionResult& pred) {
      const std::size_t i = c.begin + off;
      const Point& pt = points[i];
      RunRecord& rec = report.records[pt.record];
      rec.machine = *pt.machine;
      rec.variant = variant.name;
      rec.problem = pt.problem->name;
      rec.nprocs = pt.nprocs;
      rec.comparison.estimated = pred.total;
      rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
    };

    // One lockstep (or scalar-fallback) window. `off_of` maps window lane
    // -> chunk offset; `refill` marks re-compaction windows (their lanes
    // already evicted once).
    const auto run_window = [&](std::span<const core::BatchLane> lane_span,
                                const auto& off_of, bool refill) {
      const std::size_t w = lane_span.size();
      ws.evictions.clear();
      bool lockstep = false;
      core::BatchRunStats bs;
      const std::span<const core::PredictionResult> preds =
          arena.predict_batch(prog, mach, sweep_predict, lane_span, lockstep,
                              bs, compact ? &ws.evictions : nullptr);
      if (!lockstep) {
        for (std::size_t k = 0; k < w; ++k) assemble(off_of(k), preds[k]);
        (refill ? replayed_n : scalar_n) += w;
        return;
      }
      ir_n += bs.ir_visits;
      lanes_n += bs.lane_visits;
      stripes_n += bs.simd_stripes;
      evicted_n += bs.evicted_lanes;
      spec_br_n += bs.speculated_branches;
      spec_lanes_n += bs.speculated_lanes;
      if (refill) refilled_n += w;
      if (!compact) {
        // Internal-replay mode: every result slot is filled on return.
        for (std::size_t k = 0; k < w; ++k) assemble(off_of(k), preds[k]);
        batched_n += w - bs.replayed_lanes;
        replayed_n += bs.replayed_lanes;
        return;
      }
      // Exported evictions arrive sorted by lane; merge-walk the window.
      std::size_t e = 0;
      for (std::size_t k = 0; k < w; ++k) {
        if (e < ws.evictions.size() && ws.evictions[e].lane == static_cast<int>(k)) {
          const core::EvictedLane& ev = ws.evictions[e++];
          const std::size_t off = off_of(k);
          if (ev.rebatchable) {
            ws.deferred_next.push_back(
                DeferredPoint{ev.key, static_cast<std::uint32_t>(off)});
          } else {
            ws.scalar_replay.push_back(off);
          }
          continue;
        }
        assemble(off_of(k), preds[k]);
        ++batched_n;
      }
    };

    ws.deferred_next.clear();
    ws.scalar_replay.clear();
    ws.pool_out.clear();

    // Hands a rebatchable lane this chunk cannot refill to the session
    // pool, carrying the keep-alives the post-barrier drain needs. The
    // chunk's own counters do not record it — the drain accounts for it
    // exactly once (batched or replayed) like any other point.
    const auto export_to_pool = [&](const DeferredPoint& d) {
      const core::BatchLane& lane = ws.lanes[d.offset];
      std::shared_ptr<const compiler::SeededValues> seed;
      for (const auto& sp : ws.seeds) {
        if (sp.get() == lane.seed) {
          seed = sp;
          break;
        }
      }
      ws.pool_out.push_back(
          PoolLane{d.key, c.begin + d.offset, ws.layouts[d.offset], std::move(seed)});
    };

    // Phase 1 — fresh windows in point order.
    for (std::size_t f = 0; f < n; f += lane_width) {
      const std::size_t w = std::min(lane_width, n - f);
      run_window(std::span<const core::BatchLane>(ws.lanes.data() + f, w),
                 [&](std::size_t k) { return f + k; }, false);
    }

    // Phase 2 — re-compaction rounds: regroup evicted lanes by divergence
    // key (ties broken by offset, so the schedule is deterministic and
    // independent of anything but the chunk contents) and run each group
    // as its own lockstep window.
    for (int round = 0; !ws.deferred_next.empty(); ++round) {
      ws.deferred.swap(ws.deferred_next);
      ws.deferred_next.clear();
      if (round >= kMaxCompactionRounds) {
        // The chunk gives up regrouping; the session pool gets another shot
        // after the barrier (the drain has its own round cap).
        for (const DeferredPoint& d : ws.deferred) export_to_pool(d);
        break;
      }
      std::sort(ws.deferred.begin(), ws.deferred.end(),
                [](const DeferredPoint& a, const DeferredPoint& b) {
                  return a.key != b.key ? a.key < b.key : a.offset < b.offset;
                });
      for (std::size_t g = 0; g < ws.deferred.size();) {
        std::size_t h = g + 1;
        while (h < ws.deferred.size() && ws.deferred[h].key == ws.deferred[g].key) ++h;
        for (std::size_t s = g; s < h; s += lane_width) {
          const std::size_t w = std::min(lane_width, h - s);
          if (w < 2) {
            // A lone lane cannot run lockstep here — but another chunk of
            // the same (program, machine) group may have evicted an
            // equal-key partner, so it goes to the session pool instead of
            // straight to the scalar engine.
            export_to_pool(ws.deferred[s]);
            continue;
          }
          ws.window.clear();
          for (std::size_t k = 0; k < w; ++k) {
            ws.window.push_back(ws.lanes[ws.deferred[s + k].offset]);
          }
          run_window(std::span<const core::BatchLane>(ws.window),
                     [&](std::size_t k) {
                       return static_cast<std::size_t>(ws.deferred[s + k].offset);
                     },
                     true);
        }
        g = h;
      }
    }

    // Phase 3 — scalar replays, in point order (deterministic diagnostics).
    std::sort(ws.scalar_replay.begin(), ws.scalar_replay.end());
    if (!ws.scalar_replay.empty()) {
      const obs::Span replay_span(trace, obs::Phase::ScalarReplay,
                                  ws.scalar_replay.size());
      for (const std::size_t off : ws.scalar_replay) {
        assemble(off, arena.predict(prog, *ws.lanes[off].layout, mach,
                                    sweep_predict, *ws.lanes[off].bindings));
        ++replayed_n;
      }
    }

    // Measurement: one batched pass over the whole chunk in point order —
    // per-point bit-identical to measure_into, independent of how
    // prediction grouped the lanes.
    if (plan.measure_runs() > 0) {
      const std::span<const sim::MeasuredResult> measured = arena.measure_batch_into(
          prog, mach, plan.sim_opts(), plan.measure_runs(), ws.lanes);
      for (std::size_t off = 0; off < n; ++off) {
        RunRecord& rec = report.records[points[c.begin + off].record];
        const sim::RunStats& st = measured[off].stats;
        rec.comparison.measured_mean = st.mean;
        rec.comparison.measured_min = st.min;
        rec.comparison.measured_max = st.max;
        rec.comparison.measured_stddev = st.stddev;
        rec.measured = true;
      }
    }

    batched_points.fetch_add(batched_n, std::memory_order_relaxed);
    scalar_points.fetch_add(scalar_n, std::memory_order_relaxed);
    replayed_points.fetch_add(replayed_n, std::memory_order_relaxed);
    ir_visits.fetch_add(ir_n, std::memory_order_relaxed);
    lane_visits.fetch_add(lanes_n, std::memory_order_relaxed);
    evicted_lanes.fetch_add(evicted_n, std::memory_order_relaxed);
    refilled_lanes.fetch_add(refilled_n, std::memory_order_relaxed);
    simd_stripes.fetch_add(stripes_n, std::memory_order_relaxed);
    speculated_branches.fetch_add(spec_br_n, std::memory_order_relaxed);
    speculated_lanes.fetch_add(spec_lanes_n, std::memory_order_relaxed);

    if (!ws.pool_out.empty()) {
      const std::lock_guard<std::mutex> lock(pool_mutex);
      divergence_pool.insert(divergence_pool.end(),
                             std::make_move_iterator(ws.pool_out.begin()),
                             std::make_move_iterator(ws.pool_out.end()));
      ws.pool_out.clear();
    }
  };

  int workers = options.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::clamp<int>(workers, 1, static_cast<int>(chunks.size()));

  if (workers == 1) {
    // the serial path: no threads, chunks executed in order through one arena
    WorkerScratch ws;
    for (const Chunk& c : chunks) run_chunk(c, ws);
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    const auto worker = [&] {
      WorkerScratch ws;  // worker-owned: reused across all its chunks
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= chunks.size() || failed.load()) return;
        try {
          run_chunk(chunks[i], ws);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
  }

  // Cross-chunk drain. The session pool holds rebatchable lanes whose own
  // chunks could not refill them (lone divergence key, or the chunk's
  // round cap). After the chunk barrier the pool is sorted into a
  // canonical order — (variant, machine, divergence key, plan order) — and
  // drained serially: equal-key lanes evicted from DIFFERENT chunks of the
  // same (program, machine) group re-enter lockstep together, re-evictions
  // feed further rounds, and whatever stays lone replays scalar. The drain
  // is serial and its order a pure function of the plan, so the batch
  // telemetry stays identical for every worker count; the record payload
  // was never at risk (every path is bit-identical per point).
  report.batch.pooled_lanes = divergence_pool.size();
  if (!divergence_pool.empty()) {
    std::sort(divergence_pool.begin(), divergence_pool.end(),
              [&](const PoolLane& a, const PoolLane& b) {
                const Point& pa = points[a.point];
                const Point& pb = points[b.point];
                if (pa.variant != pb.variant) return pa.variant < pb.variant;
                if (pa.machine != pb.machine) return *pa.machine < *pb.machine;
                if (a.key != b.key) return a.key < b.key;
                return a.point < b.point;
              });
    struct DrainLane {
      std::uint64_t key = 0;
      std::size_t idx = 0;  // into divergence_pool (stable keep-alive storage)
    };
    EngineArena arena;
    arena.set_trace(trace);
    std::vector<core::BatchLane> window;
    std::vector<core::EvictedLane> evictions;
    std::vector<DrainLane> cur, nxt;
    std::size_t batched_n = 0, replayed_n = 0;
    std::uint64_t ir_n = 0, lanes_n = 0, evicted_n = 0, refilled_n = 0, stripes_n = 0;
    std::uint64_t spec_br_n = 0, spec_lanes_n = 0;

    for (std::size_t gb = 0; gb < divergence_pool.size();) {
      std::size_t ge = gb + 1;
      const Point& p0 = points[divergence_pool[gb].point];
      while (ge < divergence_pool.size() &&
             points[divergence_pool[ge].point].variant == p0.variant &&
             points[divergence_pool[ge].point].mach == p0.mach) {
        ++ge;
      }
      const compiler::CompiledProgram& prog = *variant_progs[p0.variant];
      const machine::MachineModel& mach = *p0.mach;
      const auto& variant = plan.variants()[p0.variant];

      const auto assemble = [&](std::size_t idx, const core::PredictionResult& pred) {
        const Point& pt = points[divergence_pool[idx].point];
        RunRecord& rec = report.records[pt.record];
        rec.machine = *pt.machine;
        rec.variant = variant.name;
        rec.problem = pt.problem->name;
        rec.nprocs = pt.nprocs;
        rec.comparison.estimated = pred.total;
        rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
      };
      const auto replay = [&](std::size_t idx) {
        const PoolLane& pl = divergence_pool[idx];
        assemble(idx, arena.predict(prog, *pl.layout, mach, sweep_predict,
                                    points[pl.point].problem->bindings));
        ++replayed_n;
      };

      cur.clear();
      for (std::size_t x = gb; x < ge; ++x) {
        cur.push_back(DrainLane{divergence_pool[x].key, x});
      }
      for (int round = 0; !cur.empty(); ++round) {
        if (round >= kMaxCompactionRounds) {
          for (const DrainLane& d : cur) replay(d.idx);
          break;
        }
        // already key-sorted on entry (pool order); re-evicted rounds need
        // the sort because fresh keys interleave
        std::sort(cur.begin(), cur.end(), [](const DrainLane& a, const DrainLane& b) {
          return a.key != b.key ? a.key < b.key : a.idx < b.idx;
        });
        nxt.clear();
        for (std::size_t g = 0; g < cur.size();) {
          std::size_t h = g + 1;
          while (h < cur.size() && cur[h].key == cur[g].key) ++h;
          for (std::size_t s = g; s < h; s += lane_width) {
            const std::size_t w = std::min(lane_width, h - s);
            if (w < 2) {
              replay(cur[s].idx);
              continue;
            }
            window.clear();
            for (std::size_t k = 0; k < w; ++k) {
              const PoolLane& pl = divergence_pool[cur[s + k].idx];
              window.push_back(core::BatchLane{pl.layout.get(),
                                               &points[pl.point].problem->bindings,
                                               pl.seed.get()});
            }
            evictions.clear();
            bool lockstep = false;
            core::BatchRunStats bs;
            const std::span<const core::PredictionResult> preds = arena.predict_batch(
                prog, mach, sweep_predict, std::span<const core::BatchLane>(window),
                lockstep, bs, &evictions);
            if (!lockstep) {
              for (std::size_t k = 0; k < w; ++k) assemble(cur[s + k].idx, preds[k]);
              replayed_n += w;
              continue;
            }
            ir_n += bs.ir_visits;
            lanes_n += bs.lane_visits;
            stripes_n += bs.simd_stripes;
            evicted_n += bs.evicted_lanes;
            spec_br_n += bs.speculated_branches;
            spec_lanes_n += bs.speculated_lanes;
            refilled_n += w;
            std::size_t e = 0;
            for (std::size_t k = 0; k < w; ++k) {
              if (e < evictions.size() && evictions[e].lane == static_cast<int>(k)) {
                const core::EvictedLane& ev = evictions[e++];
                if (ev.rebatchable) {
                  nxt.push_back(DrainLane{ev.key, cur[s + k].idx});
                } else {
                  replay(cur[s + k].idx);
                }
                continue;
              }
              assemble(cur[s + k].idx, preds[k]);
              ++batched_n;
            }
          }
          g = h;
        }
        cur.swap(nxt);
      }
      gb = ge;
    }

    batched_points.fetch_add(batched_n, std::memory_order_relaxed);
    replayed_points.fetch_add(replayed_n, std::memory_order_relaxed);
    ir_visits.fetch_add(ir_n, std::memory_order_relaxed);
    lane_visits.fetch_add(lanes_n, std::memory_order_relaxed);
    evicted_lanes.fetch_add(evicted_n, std::memory_order_relaxed);
    refilled_lanes.fetch_add(refilled_n, std::memory_order_relaxed);
    simd_stripes.fetch_add(stripes_n, std::memory_order_relaxed);
    speculated_branches.fetch_add(spec_br_n, std::memory_order_relaxed);
    speculated_lanes.fetch_add(spec_lanes_n, std::memory_order_relaxed);
    divergence_pool.clear();
  }

  report.batch.batched_points = batched_points.load();
  report.batch.scalar_points = scalar_points.load();
  report.batch.replayed_points = replayed_points.load();
  report.batch.ir_visits = ir_visits.load();
  report.batch.lane_visits = lane_visits.load();
  report.batch.evicted_lanes = evicted_lanes.load();
  report.batch.refilled_lanes = refilled_lanes.load();
  report.batch.simd_stripes = simd_stripes.load();
  report.batch.speculated_branches = speculated_branches.load();
  report.batch.speculated_lanes = speculated_lanes.load();
  report.cache = cache_stats() - before;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Metrics are published after the report is assembled, so a throwing
  // registry (kind clash) can never corrupt a sweep, and a null registry
  // costs one branch. Counters are cumulative across runs; the occupancy
  // gauge reflects the most recent run.
  if (options.metrics != nullptr) {
    obs::Registry& reg = *options.metrics;
    reg.counter("hpf90d_run_points_total", "Sweep points executed by Session::run")
        .add(points.size());
    reg.counter("hpf90d_run_batched_points_total", "Points priced in lockstep batches")
        .add(report.batch.batched_points);
    reg.counter("hpf90d_run_scalar_points_total", "Points priced on the scalar path")
        .add(report.batch.scalar_points);
    reg.counter("hpf90d_run_replayed_points_total", "Points replayed after eviction")
        .add(report.batch.replayed_points);
    reg.counter("hpf90d_run_evicted_lanes_total", "Lanes evicted from lockstep windows")
        .add(report.batch.evicted_lanes);
    reg.counter("hpf90d_run_refilled_lanes_total", "Evicted lanes re-batched by compaction")
        .add(report.batch.refilled_lanes);
    reg.gauge("hpf90d_run_lockstep_occupancy", "Mean active lanes per batch IR visit, last run")
        .set(report.batch.mean_lanes_per_visit());
    reg.histogram("hpf90d_run_wall_seconds", "Session::run wall time",
                  {0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0})
        .observe(report.wall_seconds);
  }
  return report;
}

void Session::set_artifact_spill(std::shared_ptr<ArtifactSpill> spill) {
  spill_ = std::move(spill);
  if (spill_) {
    // The store probes/writes through the interface; a corrupt or missing
    // artifact degrades to a plain miss.
    LayoutStore::Spill hooks;
    hooks.load = [spill = spill_](const std::string& key) -> LayoutStore::LayoutPtr {
      try {
        if (auto layout = spill->load_layout(key)) {
          return std::make_shared<const compiler::DataLayout>(*std::move(layout));
        }
      } catch (...) {
      }
      return nullptr;
    };
    hooks.store = [spill = spill_](const std::string& key,
                                   const compiler::DataLayout& layout) {
      try {
        spill->store_layout(key, layout);
      } catch (...) {
      }
    };
    layout_store_.set_spill(std::move(hooks));
  } else {
    layout_store_.set_spill({});
  }
}

std::size_t Session::warm_start() {
  if (!spill_) return 0;
  std::size_t warmed = 0;
  for (const ProgramRecipe& recipe : spill_->load_programs()) {
    try {
      (void)compile_cached(recipe.source, recipe.overrides, recipe.options);
      ++warmed;
    } catch (...) {
      // stale recipe (e.g. from an older grammar); warm what still compiles
    }
  }
  return warmed;
}

std::size_t Session::cached_programs() const {
  std::size_t n = 0;
  for (auto& shard : program_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

std::size_t Session::cached_layouts() const { return layout_store_.size(); }

void Session::clear_caches() {
  clear_program_cache();
  layout_store_.clear();
  {
    const std::lock_guard<std::mutex> lock(critical_mutex_);
    critical_memo_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(seed_mutex_);
    seed_memo_.clear();
  }
}

void Session::clear_program_cache() {
  for (auto& shard : program_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

}  // namespace hpf90d::api
