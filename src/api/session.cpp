#include "api/session.hpp"

#include <chrono>

#include "api/experiment_plan.hpp"
#include "support/text.hpp"

namespace hpf90d::api {

namespace {

/// FNV-1a 64-bit: cheap, stable source fingerprint for cache keys. The key
/// also embeds the source length, so a collision needs same-length inputs.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string program_key(std::string_view source,
                        const std::vector<std::string>& overrides,
                        const compiler::CompilerOptions& options) {
  std::string key = support::strfmt("%016llx:%zu:%d:%.17g",
                                    static_cast<unsigned long long>(fnv1a64(source)),
                                    source.size(), options.message_vectorization ? 1 : 0,
                                    options.default_mask_probability);
  for (const auto& o : overrides) {
    key += '\x1f';
    key += o;
  }
  return key;
}

std::string layout_key(const compiler::CompiledProgram* prog,
                       const front::Bindings& bindings,
                       const compiler::LayoutOptions& lo) {
  std::string key = support::strfmt("%p:%d:", static_cast<const void*>(prog), lo.nprocs);
  if (lo.grid_shape) {
    for (int s : *lo.grid_shape) key += support::strfmt("%dx", s);
  }
  for (const auto& [name, value] : bindings.values()) {
    key += support::strfmt("\x1f%s=%.17g", name.c_str(), value);
  }
  return key;
}

}  // namespace

Session::ProgramHandle Session::compile(std::string_view source,
                                        const compiler::CompilerOptions& options) {
  return compile_cached(source, {}, options);
}

Session::ProgramHandle Session::compile_with_directives(
    std::string_view source, const std::vector<std::string>& overrides,
    const compiler::CompilerOptions& options) {
  return compile_cached(source, overrides, options);
}

Session::ProgramHandle Session::compile_cached(std::string_view source,
                                               const std::vector<std::string>& overrides,
                                               const compiler::CompilerOptions& options) {
  const std::string key = program_key(source, overrides, options);
  if (const auto it = program_cache_.find(key); it != program_cache_.end()) {
    ++stats_.compile_hits;
    return it->second;
  }
  ++stats_.compile_misses;
  auto prog = std::make_shared<compiler::CompiledProgram>(
      overrides.empty() ? compiler::compile(source, options)
                        : compiler::compile_with_directives(source, overrides, options));
  program_cache_.emplace(key, prog);
  return prog;
}

const compiler::DataLayout& Session::layout_for(const ProgramHandle& prog,
                                                const front::Bindings& bindings,
                                                const compiler::LayoutOptions& lo) {
  const std::string key = layout_key(prog.get(), bindings, lo);
  if (const auto it = layout_cache_.find(key); it != layout_cache_.end()) {
    ++stats_.layout_hits;
    return *it->second.layout;
  }
  ++stats_.layout_misses;
  auto layout =
      std::make_unique<compiler::DataLayout>(compiler::make_layout(*prog, bindings, lo));
  const auto it = layout_cache_.emplace(key, LayoutEntry{prog, std::move(layout)}).first;
  return *it->second.layout;
}

core::PredictionResult Session::predict(const ProgramHandle& prog,
                                        const RunConfig& config) {
  core::require_critical_complete(*prog, config.bindings);
  const compiler::DataLayout& layout =
      layout_for(prog, config.bindings, layout_options(config));
  core::InterpretationEngine engine(*prog, layout, machine(config.machine),
                                    config.predict, config.bindings);
  return engine.interpret();
}

sim::MeasuredResult Session::measure(const ProgramHandle& prog, const RunConfig& config) {
  core::require_critical_complete(*prog, config.bindings);
  const compiler::DataLayout& layout =
      layout_for(prog, config.bindings, layout_options(config));
  const sim::Simulator simulator(machine(config.machine));
  return simulator.measure(*prog, config.bindings, layout, config.sim, config.runs);
}

Comparison Session::compare(const ProgramHandle& prog, const RunConfig& config) {
  Comparison out;
  out.estimated = predict(prog, config).total;
  const sim::MeasuredResult measured = measure(prog, config);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

core::PredictionResult Session::predict(const compiler::CompiledProgram& prog,
                                        const RunConfig& config) const {
  return core::predict(prog, config.bindings, layout_options(config),
                       machine(config.machine), config.predict);
}

sim::MeasuredResult Session::measure(const compiler::CompiledProgram& prog,
                                     const RunConfig& config) const {
  core::require_critical_complete(prog, config.bindings);
  const sim::Simulator simulator(machine(config.machine));
  return simulator.measure(prog, config.bindings, layout_options(config), config.sim,
                           config.runs);
}

Comparison Session::compare(const compiler::CompiledProgram& prog,
                            const RunConfig& config) const {
  Comparison out;
  out.estimated = predict(prog, config).total;
  const sim::MeasuredResult measured = measure(prog, config);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

RunReport Session::run(const ExperimentPlan& plan) {
  plan.validate();
  const auto t0 = std::chrono::steady_clock::now();
  const CacheStats before = stats_;

  RunReport report;
  report.title = plan.title();
  report.records.reserve(plan.point_count());

  // fail fast on unknown names, before any point of the sweep runs
  for (const auto& machine_name : plan.machine_names()) (void)machine(machine_name);

  for (const auto& machine_name : plan.machine_names()) {
    for (const auto& variant : plan.variants()) {
      const ProgramHandle prog =
          variant.overrides.empty()
              ? compile(plan.program_source(), plan.compiler_opts())
              : compile_with_directives(plan.program_source(), variant.overrides,
                                        plan.compiler_opts());
      for (const auto& problem : plan.problems()) {
        for (const int np : plan.nprocs_list()) {
          RunConfig cfg;
          cfg.machine = machine_name;
          cfg.nprocs = np;
          if (variant.grid_rank) {
            cfg.grid_shape = compiler::ProcGrid::factorized(np, *variant.grid_rank).shape;
          }
          cfg.bindings = problem.bindings;
          cfg.runs = plan.measure_runs();
          cfg.predict = plan.predict_opts();
          cfg.sim = plan.sim_opts();

          RunRecord rec;
          rec.machine = machine_name;
          rec.variant = variant.name;
          rec.problem = problem.name;
          rec.nprocs = np;
          if (plan.measure_runs() > 0) {
            rec.comparison = compare(prog, cfg);
            rec.measured = true;
          } else {
            rec.comparison.estimated = predict(prog, cfg).total;
          }
          report.records.push_back(std::move(rec));
        }
      }
    }
  }

  report.cache = stats_ - before;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

void Session::clear_caches() {
  program_cache_.clear();
  layout_cache_.clear();
}

}  // namespace hpf90d::api
