#include "api/session.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "api/engine_arena.hpp"
#include "api/experiment_plan.hpp"
#include "support/text.hpp"

namespace hpf90d::api {

namespace {

/// FNV-1a 64-bit: cheap, stable fingerprint used to pick a cache shard and
/// to compact the program key. The program key also embeds the source
/// length, so a collision needs same-length inputs.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string program_key(std::string_view source,
                        const std::vector<std::string>& overrides,
                        const compiler::CompilerOptions& options) {
  std::string key = support::strfmt("%016llx:%zu:%d:%.17g",
                                    static_cast<unsigned long long>(fnv1a64(source)),
                                    source.size(), options.message_vectorization ? 1 : 0,
                                    options.default_mask_probability);
  for (const auto& o : overrides) {
    key += '\x1f';
    key += o;
  }
  return key;
}

std::size_t shard_of(std::string_view key, std::size_t shard_count) {
  return static_cast<std::size_t>(fnv1a64(key)) % shard_count;
}

}  // namespace

Session::ProgramHandle Session::compile(std::string_view source,
                                        const compiler::CompilerOptions& options) {
  return compile_cached(source, {}, options);
}

Session::ProgramHandle Session::compile_with_directives(
    std::string_view source, const std::vector<std::string>& overrides,
    const compiler::CompilerOptions& options) {
  return compile_cached(source, overrides, options);
}

Session::ProgramHandle Session::compile_cached(std::string_view source,
                                               const std::vector<std::string>& overrides,
                                               const compiler::CompilerOptions& options) {
  const std::string key = program_key(source, overrides, options);
  ProgramShard& shard = program_shards_[shard_of(key, kShards)];

  // Per-entry once semantics: the placeholder future is inserted under the
  // shard lock and the compiler runs OUTSIDE it — a concurrent compile of
  // the same source waits on the future and then hits (each unique key
  // misses exactly once), while distinct keys that collide into this shard
  // compile in parallel. This mirrors LayoutStore::get_or_build minus the
  // LRU machinery; unlike there, the failure-path erase below needs no
  // owner check because nothing but clear_program_cache() (documented
  // non-racing) can remove a placeholder. If this cache ever gains
  // eviction, fold it into LayoutStore's owner-guarded implementation
  // instead of growing a second copy.
  std::promise<ProgramHandle> promise;
  std::shared_future<ProgramHandle> future;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      future = it->second;
    } else {
      ++stats_.compile_misses;
      shard.map.emplace(key, promise.get_future().share());
    }
  }
  if (future.valid()) {
    ProgramHandle shared = future.get();  // rethrows a failed build
    // counted only on success, so a failed shared build leaves no spurious
    // hit behind (misses = compilation attempts, hits = served results)
    ++stats_.compile_hits;
    return shared;
  }

  try {
    auto prog = std::make_shared<compiler::CompiledProgram>(
        overrides.empty()
            ? compiler::compile(source, options)
            : compiler::compile_with_directives(source, overrides, options));
    promise.set_value(prog);
    // Write-behind the recipe so a restarted session can warm_start this
    // entry. Spill failures must not fail the compile.
    if (spill_) {
      try {
        spill_->store_program(key, ProgramRecipe{std::string(source), overrides, options});
      } catch (...) {
      }
    }
    return prog;
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.erase(key);  // the next lookup retries the compilation
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

LayoutStore::LayoutPtr Session::layout_for(const compiler::CompiledProgram& prog,
                                           const front::Bindings& bindings,
                                           const compiler::LayoutOptions& lo) const {
  // Content-addressed key: two structurally identical programs (identical
  // directives, symbols, aliases) share one entry regardless of who owns
  // them, and the entry outlives both (DataLayout is self-contained).
  const std::string key = compiler::layout_fingerprint(prog, bindings, lo);
  return layout_store_.get_or_build(
      key, [&] { return compiler::make_layout(prog, bindings, lo); });
}

CacheStats Session::cache_stats() const noexcept {
  const LayoutStore::Counters layouts = layout_store_.counters();
  return {stats_.compile_hits.load(), stats_.compile_misses.load(), layouts.hits,
          layouts.misses, layouts.evictions, layouts.spill_hits,
          layout_store_.capacity()};
}

core::PredictionResult Session::predict(const ProgramHandle& prog,
                                        const RunConfig& config) {
  return predict(*prog, config);
}

sim::MeasuredResult Session::measure(const ProgramHandle& prog, const RunConfig& config) {
  return measure(*prog, config);
}

Comparison Session::compare(const ProgramHandle& prog, const RunConfig& config) {
  return compare(*prog, config);
}

core::PredictionResult Session::predict(const compiler::CompiledProgram& prog,
                                        const RunConfig& config) const {
  core::require_critical_complete(prog, config.bindings);
  const LayoutStore::LayoutPtr layout =
      layout_for(prog, config.bindings, layout_options(config));
  // core::predict's layout overload re-validates critical variables; call
  // the engine directly so the (potentially expensive) analysis runs once.
  core::InterpretationEngine engine(prog, *layout, machine(config.machine),
                                    config.predict, config.bindings);
  return engine.interpret();
}

sim::MeasuredResult Session::measure(const compiler::CompiledProgram& prog,
                                     const RunConfig& config) const {
  core::require_critical_complete(prog, config.bindings);
  const LayoutStore::LayoutPtr layout =
      layout_for(prog, config.bindings, layout_options(config));
  const sim::Simulator simulator(machine(config.machine));
  return simulator.measure(prog, config.bindings, *layout, config.sim, config.runs);
}

Comparison Session::compare(const compiler::CompiledProgram& prog,
                            const RunConfig& config) const {
  Comparison out;
  out.estimated = predict(prog, config).total;
  const sim::MeasuredResult measured = measure(prog, config);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

RunReport Session::run(const ExperimentPlan& plan, const RunOptions& options) {
  plan.validate();
  const auto t0 = std::chrono::steady_clock::now();
  const CacheStats before = cache_stats();
  // After the snapshot: evictions triggered by installing this run's
  // capacity belong to this run's reported cache stats.
  if (options.layout_cache_capacity) {
    set_layout_cache_capacity(*options.layout_cache_capacity);
  }

  RunReport report;
  report.title = plan.title();

  // fail fast on unknown names, before any point of the sweep runs
  for (const auto& machine_name : plan.machine_names()) (void)machine(machine_name);

  // Compile every (machine, variant) pair serially, replicating the serial
  // sweep's cache-call pattern (each variant misses once, later machines
  // hit) so report.cache is identical for every worker count.
  std::vector<ProgramHandle> variant_progs(plan.variants().size());
  for (std::size_t m = 0; m < plan.machine_names().size(); ++m) {
    for (std::size_t v = 0; v < plan.variants().size(); ++v) {
      const auto& variant = plan.variants()[v];
      variant_progs[v] =
          variant.overrides.empty()
              ? compile(plan.program_source(), plan.compiler_opts())
              : compile_with_directives(plan.program_source(), variant.overrides,
                                        plan.compiler_opts());
    }
  }

  // Critical-variable validation depends only on (program, bindings), so it
  // is hoisted out of the sweep: once per (variant, problem) pair instead of
  // once (or twice) per point, and every diagnostic fires before any thread
  // starts. The verdict is further memoized across run() calls — the
  // analysis reads only which names are bound, never their values.
  const auto check_critical = [this](const compiler::CompiledProgram& prog,
                                     const front::Bindings& bindings) {
    std::string key = std::to_string(prog.compile_id);
    for (const auto& [name, value] : bindings.values()) {
      key += '\x1f';
      key += name;
    }
    {
      const std::lock_guard<std::mutex> lock(critical_mutex_);
      const auto it = critical_memo_.find(key);
      if (it != critical_memo_.end()) {
        if (it->second.empty()) return;
        throw support::CompileError(it->second);
      }
    }
    try {
      core::require_critical_complete(prog, bindings);
    } catch (const support::CompileError& e) {
      const std::lock_guard<std::mutex> lock(critical_mutex_);
      critical_memo_.emplace(std::move(key), e.what());
      throw;
    }
    const std::lock_guard<std::mutex> lock(critical_mutex_);
    critical_memo_.emplace(std::move(key), std::string());
  };
  for (std::size_t v = 0; v < plan.variants().size(); ++v) {
    if (plan.scaled_by_nprocs()) {
      for (const auto& sc : plan.scaled_cases_list()) {
        check_critical(*variant_progs[v], sc.problem.bindings);
      }
    } else {
      for (const auto& problem : plan.problems()) {
        check_critical(*variant_progs[v], problem.bindings);
      }
    }
  }

  // Flatten the cross product in sweep order; records are assembled by
  // point index, so the report ordering is independent of scheduling.
  struct Point {
    const std::string* machine = nullptr;        // registry name (for the record)
    const machine::MachineModel* mach = nullptr; // resolved once per machine
    std::size_t variant = 0;
    const ProblemCase* problem = nullptr;
    int nprocs = 0;
  };
  std::vector<Point> points;
  points.reserve(plan.point_count());
  for (const auto& machine_name : plan.machine_names()) {
    // one registry lookup per machine instead of one per point
    const machine::MachineModel* mach = &machine(machine_name);
    for (std::size_t v = 0; v < plan.variants().size(); ++v) {
      if (plan.scaled_by_nprocs()) {
        // Scaled axis (weak scaling): the problem is already coupled to its
        // processor count, so the pairs replace the problems x nprocs product.
        for (const auto& sc : plan.scaled_cases_list()) {
          points.push_back(Point{&machine_name, mach, v, &sc.problem, sc.nprocs});
        }
      } else {
        for (const auto& problem : plan.problems()) {
          for (const int np : plan.nprocs_list()) {
            points.push_back(Point{&machine_name, mach, v, &problem, np});
          }
        }
      }
    }
  }
  report.records.resize(points.size());

  // Partition the sweep into lockstep chunks: maximal runs of consecutive
  // points sharing (compiled program, machine) — BatchEngine's lane
  // contract — capped at batch_size lanes. The partition depends only on
  // the plan and options, never on scheduling, so batch composition (and
  // with it divergence/replay behaviour) is identical for every worker
  // count. batch_size <= 1 or the legacy engine path degenerate to
  // single-point chunks, i.e. exactly the scalar sweep.
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  const std::size_t max_lanes =
      options.reuse_engines && options.batch_size > 1
          ? static_cast<std::size_t>(options.batch_size)
          : 1;
  std::vector<Chunk> chunks;
  chunks.reserve(points.size() / max_lanes + 1);
  for (std::size_t i = 0; i < points.size();) {
    std::size_t j = i + 1;
    while (j < points.size() && j - i < max_lanes &&
           points[j].mach == points[i].mach && points[j].variant == points[i].variant) {
      ++j;
    }
    chunks.push_back(Chunk{i, j});
    i = j;
  }

  // Batch telemetry accumulates through order-independent integer sums, so
  // RunReport::batch is deterministic under any worker interleaving.
  std::atomic<std::size_t> batched_points{0};
  std::atomic<std::size_t> scalar_points{0};
  std::atomic<std::size_t> replayed_points{0};
  std::atomic<std::uint64_t> ir_visits{0};
  std::atomic<std::uint64_t> lane_visits{0};

  const auto run_point = [&](std::size_t i, EngineArena* arena) {
    const Point& pt = points[i];
    const auto& variant = plan.variants()[pt.variant];

    RunRecord rec;
    rec.machine = *pt.machine;
    rec.variant = variant.name;
    rec.problem = pt.problem->name;
    rec.nprocs = pt.nprocs;
    const compiler::CompiledProgram& prog = *variant_progs[pt.variant];
    if (arena != nullptr) {
      // The arena hot path: one layout lookup per point (prediction and
      // measurement share it), no per-point engine construction, and the
      // problem's bindings passed by reference instead of copied into a
      // RunConfig.
      compiler::LayoutOptions lo;
      lo.nprocs = pt.nprocs;
      if (variant.grid_rank) {
        lo.grid_shape =
            compiler::ProcGrid::factorized(pt.nprocs, *variant.grid_rank).shape;
      }
      const LayoutStore::LayoutPtr layout =
          layout_for(prog, pt.problem->bindings, lo);
      const machine::MachineModel& mach = *pt.mach;
      const core::PredictionResult& pred = arena->predict(
          prog, *layout, mach, plan.predict_opts(), pt.problem->bindings);
      rec.comparison.estimated = pred.total;
      rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
      if (plan.measure_runs() > 0) {
        // measure_into: the arena's scratch MeasuredResult and executor
        // recycle their buffers across all this worker's points.
        const sim::MeasuredResult& measured =
            arena->measure_into(prog, *layout, mach, plan.sim_opts(),
                                plan.measure_runs(), pt.problem->bindings);
        rec.comparison.measured_mean = measured.stats.mean;
        rec.comparison.measured_min = measured.stats.min;
        rec.comparison.measured_max = measured.stats.max;
        rec.comparison.measured_stddev = measured.stats.stddev;
        rec.measured = true;
      }
    } else {
      // Legacy per-point-engine path (RunOptions::reuse_engines = false):
      // PR 2's behaviour, kept as the bench baseline.
      RunConfig cfg;
      cfg.machine = *pt.machine;
      cfg.nprocs = pt.nprocs;
      if (variant.grid_rank) {
        cfg.grid_shape =
            compiler::ProcGrid::factorized(pt.nprocs, *variant.grid_rank).shape;
      }
      cfg.bindings = pt.problem->bindings;
      cfg.runs = plan.measure_runs();
      cfg.predict = plan.predict_opts();
      cfg.sim = plan.sim_opts();
      const core::PredictionResult pred = predict(prog, cfg);
      rec.comparison.estimated = pred.total;
      rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
      if (plan.measure_runs() > 0) {
        const sim::MeasuredResult measured = measure(prog, cfg);
        rec.comparison.measured_mean = measured.stats.mean;
        rec.comparison.measured_min = measured.stats.min;
        rec.comparison.measured_max = measured.stats.max;
        rec.comparison.measured_stddev = measured.stats.stddev;
        rec.measured = true;
      }
    }
    report.records[i] = std::move(rec);
  };

  // One worker claim = one chunk. Single-lane chunks (and the legacy
  // per-point-engine path) go through run_point unchanged; multi-lane
  // chunks price every lane together through the arena's lockstep batch
  // engine and assemble records by point index, so the record payload is
  // byte-identical to the scalar path for any batch size and worker count.
  // The lane/layout vectors are worker-owned scratch reused across chunks.
  const auto run_chunk = [&](const Chunk& c, EngineArena* arena,
                             std::vector<core::BatchLane>& lanes,
                             std::vector<LayoutStore::LayoutPtr>& layouts) {
    const std::size_t n = c.end - c.begin;
    if (arena == nullptr || n == 1) {
      for (std::size_t i = c.begin; i < c.end; ++i) run_point(i, arena);
      scalar_points.fetch_add(n, std::memory_order_relaxed);
      return;
    }
    const Point& p0 = points[c.begin];
    const auto& variant = plan.variants()[p0.variant];
    const compiler::CompiledProgram& prog = *variant_progs[p0.variant];
    const machine::MachineModel& mach = *p0.mach;
    lanes.clear();
    layouts.clear();
    // Layout lookups happen per point, in point order — the same cache-call
    // pattern as the scalar arena path (exactly one lookup per point), which
    // keeps report.cache identical between the two.
    for (std::size_t i = c.begin; i < c.end; ++i) {
      const Point& pt = points[i];
      compiler::LayoutOptions lo;
      lo.nprocs = pt.nprocs;
      if (variant.grid_rank) {
        lo.grid_shape =
            compiler::ProcGrid::factorized(pt.nprocs, *variant.grid_rank).shape;
      }
      layouts.push_back(layout_for(prog, pt.problem->bindings, lo));
      lanes.push_back(core::BatchLane{layouts.back().get(), &pt.problem->bindings});
    }
    bool lockstep = false;
    core::BatchRunStats bs;
    const std::span<const core::PredictionResult> preds =
        arena->predict_batch(prog, mach, plan.predict_opts(), lanes, lockstep, bs);
    if (lockstep) {
      batched_points.fetch_add(n - bs.replayed_lanes, std::memory_order_relaxed);
      replayed_points.fetch_add(bs.replayed_lanes, std::memory_order_relaxed);
      ir_visits.fetch_add(bs.ir_visits, std::memory_order_relaxed);
      lane_visits.fetch_add(bs.lane_visits, std::memory_order_relaxed);
    } else {
      scalar_points.fetch_add(n, std::memory_order_relaxed);
    }
    std::span<const sim::MeasuredResult> measured;
    if (plan.measure_runs() > 0) {
      measured = arena->measure_batch_into(prog, mach, plan.sim_opts(),
                                           plan.measure_runs(), lanes);
    }
    for (std::size_t i = c.begin; i < c.end; ++i) {
      const Point& pt = points[i];
      RunRecord rec;
      rec.machine = *pt.machine;
      rec.variant = variant.name;
      rec.problem = pt.problem->name;
      rec.nprocs = pt.nprocs;
      const core::PredictionResult& pred = preds[i - c.begin];
      rec.comparison.estimated = pred.total;
      rec.phases = PhaseBreakdown{pred.comp, pred.comm, pred.overhead, pred.wait};
      if (plan.measure_runs() > 0) {
        const sim::RunStats& st = measured[i - c.begin].stats;
        rec.comparison.measured_mean = st.mean;
        rec.comparison.measured_min = st.min;
        rec.comparison.measured_max = st.max;
        rec.comparison.measured_stddev = st.stddev;
        rec.measured = true;
      }
      report.records[i] = std::move(rec);
    }
  };

  int workers = options.workers;
  if (workers <= 0) workers = static_cast<int>(std::thread::hardware_concurrency());
  workers = std::clamp<int>(workers, 1, static_cast<int>(chunks.size()));

  if (workers == 1) {
    // the serial path: no threads, chunks executed in order through one arena
    EngineArena arena;
    std::vector<core::BatchLane> lanes;
    std::vector<LayoutStore::LayoutPtr> layouts;
    for (const Chunk& c : chunks) {
      run_chunk(c, options.reuse_engines ? &arena : nullptr, lanes, layouts);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    const auto worker = [&] {
      EngineArena arena;  // worker-owned: reused across all its chunks
      std::vector<core::BatchLane> lanes;
      std::vector<LayoutStore::LayoutPtr> layouts;
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= chunks.size() || failed.load()) return;
        try {
          run_chunk(chunks[i], options.reuse_engines ? &arena : nullptr, lanes,
                    layouts);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true);
          return;
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    if (error) std::rethrow_exception(error);
  }

  report.batch.batched_points = batched_points.load();
  report.batch.scalar_points = scalar_points.load();
  report.batch.replayed_points = replayed_points.load();
  report.batch.ir_visits = ir_visits.load();
  report.batch.lane_visits = lane_visits.load();
  report.cache = cache_stats() - before;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return report;
}

void Session::set_artifact_spill(std::shared_ptr<ArtifactSpill> spill) {
  spill_ = std::move(spill);
  if (spill_) {
    // The store probes/writes through the interface; a corrupt or missing
    // artifact degrades to a plain miss.
    LayoutStore::Spill hooks;
    hooks.load = [spill = spill_](const std::string& key) -> LayoutStore::LayoutPtr {
      try {
        if (auto layout = spill->load_layout(key)) {
          return std::make_shared<const compiler::DataLayout>(*std::move(layout));
        }
      } catch (...) {
      }
      return nullptr;
    };
    hooks.store = [spill = spill_](const std::string& key,
                                   const compiler::DataLayout& layout) {
      try {
        spill->store_layout(key, layout);
      } catch (...) {
      }
    };
    layout_store_.set_spill(std::move(hooks));
  } else {
    layout_store_.set_spill({});
  }
}

std::size_t Session::warm_start() {
  if (!spill_) return 0;
  std::size_t warmed = 0;
  for (const ProgramRecipe& recipe : spill_->load_programs()) {
    try {
      (void)compile_cached(recipe.source, recipe.overrides, recipe.options);
      ++warmed;
    } catch (...) {
      // stale recipe (e.g. from an older grammar); warm what still compiles
    }
  }
  return warmed;
}

std::size_t Session::cached_programs() const {
  std::size_t n = 0;
  for (auto& shard : program_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    n += shard.map.size();
  }
  return n;
}

std::size_t Session::cached_layouts() const { return layout_store_.size(); }

void Session::clear_caches() {
  clear_program_cache();
  layout_store_.clear();
  {
    const std::lock_guard<std::mutex> lock(critical_mutex_);
    critical_memo_.clear();
  }
}

void Session::clear_program_cache() {
  for (auto& shard : program_shards_) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
}

}  // namespace hpf90d::api
