// session.hpp — the experiment session, the framework's public entry point.
//
// The paper's environment is interactive (§5.2): compile once, then sweep
// directives, problem sizes, and machine sizes while comparing predicted
// and measured times. A Session makes that workflow first-class:
//
//   * it owns a MachineRegistry of named machine abstractions,
//   * it memoizes CompiledPrograms keyed by (source hash, directive
//     overrides, compiler options) so re-evaluating a variant never
//     re-runs the compiler,
//   * it memoizes DataLayouts keyed by *content* — a structural fingerprint
//     of (directives, symbol extents, bindings, nprocs, grid shape) — so
//     session-owned and externally owned programs share entries, and
//     entries survive program eviction,
//   * it executes whole ExperimentPlans batched on a worker pool (sweep
//     points are independent), returning a RunReport whose records,
//     ordering, estimates, and cache statistics are identical for any
//     worker count.
//
// Thread safety: compile/predict/measure/compare and the caches they use
// may be called concurrently. The caches are sharded maps; entries are
// built under their shard lock, so every unique key misses exactly once —
// which is what keeps RunReport cache statistics deterministic under
// parallel execution. clear_caches() must not race with in-flight calls.
//
// driver::Framework remains as a thin compatibility shim over Session.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/machine_registry.hpp"
#include "api/run_report.hpp"
#include "compiler/pipeline.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"

namespace hpf90d::api {

class ExperimentPlan;

/// One experiment configuration addressed at a *named* machine. The shape
/// is driver::ExperimentConfig plus the machine name (the driver aliases
/// this type for backward compatibility).
struct RunConfig {
  std::string machine = "ipsc860";
  int nprocs = 1;
  std::optional<std::vector<int>> grid_shape;  // e.g. {2,2}
  front::Bindings bindings;
  int runs = 3;  // simulated "measurement" repetitions
  core::PredictOptions predict;
  sim::SimOptions sim;
};

/// Execution options for Session::run. Sweep points are independent
/// (prediction is pure; measurement derives its noise seeds per point), so
/// the cross product is dispatched to a pool of workers.
struct RunOptions {
  /// Worker threads: 0 = std::thread::hardware_concurrency, 1 = today's
  /// serial path (no threads spawned). The RunReport's records, ordering,
  /// estimates, and cache statistics are identical for every setting; only
  /// wall_seconds changes.
  int workers = 0;
};

class Session {
 public:
  /// Programs are cached and shared; handles stay valid for the session's
  /// lifetime (and beyond, being shared_ptr).
  using ProgramHandle = std::shared_ptr<const compiler::CompiledProgram>;

  /// `max_nodes` sizes every machine model instantiated by this session.
  explicit Session(int max_nodes = 8) : max_nodes_(max_nodes) {}

  [[nodiscard]] MachineRegistry& machines() noexcept { return registry_; }
  [[nodiscard]] const MachineRegistry& machines() const noexcept { return registry_; }
  [[nodiscard]] int max_nodes() const noexcept { return max_nodes_; }

  /// The session-sized model for a registry name (default: the paper's
  /// testbed). Throws std::out_of_range for unregistered names.
  [[nodiscard]] const machine::MachineModel& machine(
      std::string_view name = "ipsc860") const {
    return registry_.get(name, max_nodes_);
  }

  // --- phase 1: compilation (memoized) --------------------------------------
  [[nodiscard]] ProgramHandle compile(std::string_view source,
                                      const compiler::CompilerOptions& options = {});
  [[nodiscard]] ProgramHandle compile_with_directives(
      std::string_view source, const std::vector<std::string>& overrides,
      const compiler::CompilerOptions& options = {});

  // --- phase 2: interpretation / simulated measurement -----------------------
  /// Source-driven performance prediction (layout memoized per config).
  [[nodiscard]] core::PredictionResult predict(const ProgramHandle& prog,
                                               const RunConfig& config);
  /// "Measurement" on the simulated machine.
  [[nodiscard]] sim::MeasuredResult measure(const ProgramHandle& prog,
                                            const RunConfig& config);
  /// Predict + measure + compare.
  [[nodiscard]] Comparison compare(const ProgramHandle& prog, const RunConfig& config);

  // Overloads for externally owned programs (the driver::Framework shim
  // hands these in). The layout cache is content-addressed, so external
  // programs hit the same entries as session-owned ones: a structurally
  // identical program reuses a cached layout instead of rebuilding it.
  [[nodiscard]] core::PredictionResult predict(const compiler::CompiledProgram& prog,
                                               const RunConfig& config) const;
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const RunConfig& config) const;
  [[nodiscard]] Comparison compare(const compiler::CompiledProgram& prog,
                                   const RunConfig& config) const;

  // --- batched execution ------------------------------------------------------
  /// Executes the plan's whole cross product through the caches on a worker
  /// pool; the report's cache stats cover exactly this run.
  [[nodiscard]] RunReport run(const ExperimentPlan& plan,
                              const RunOptions& options = {});

  [[nodiscard]] CacheStats cache_stats() const noexcept { return stats_.snapshot(); }
  [[nodiscard]] std::size_t cached_programs() const;
  [[nodiscard]] std::size_t cached_layouts() const;
  /// Drops programs and layouts. Not safe to call concurrently with other
  /// session operations.
  void clear_caches();
  /// Drops cached programs only. Layout entries are content-addressed and
  /// self-contained, so they survive program eviction and keep serving
  /// structurally identical programs.
  void clear_program_cache();

 private:
  /// Cache counters, atomically incremented by concurrent workers; CacheStats
  /// snapshots are taken for reports.
  struct AtomicCacheStats {
    std::atomic<std::size_t> compile_hits{0};
    std::atomic<std::size_t> compile_misses{0};
    std::atomic<std::size_t> layout_hits{0};
    std::atomic<std::size_t> layout_misses{0};

    [[nodiscard]] CacheStats snapshot() const {
      return {compile_hits.load(), compile_misses.load(), layout_hits.load(),
              layout_misses.load()};
    }
  };

  [[nodiscard]] ProgramHandle compile_cached(std::string_view source,
                                             const std::vector<std::string>& overrides,
                                             const compiler::CompilerOptions& options);
  /// Memoized layout lookup by content fingerprint. The entry is built under
  /// its shard lock (every unique key misses exactly once); the returned
  /// reference stays valid until clear_caches().
  [[nodiscard]] const compiler::DataLayout& layout_for(
      const compiler::CompiledProgram& prog, const front::Bindings& bindings,
      const compiler::LayoutOptions& lo) const;

  [[nodiscard]] static compiler::LayoutOptions layout_options(const RunConfig& c) {
    compiler::LayoutOptions lo;
    lo.nprocs = c.nprocs;
    lo.grid_shape = c.grid_shape;
    return lo;
  }

  int max_nodes_;
  MachineRegistry registry_;
  mutable AtomicCacheStats stats_;

  /// Sharded caches: each shard is an independently locked map, so worker
  /// threads touching different keys rarely contend.
  static constexpr std::size_t kShards = 16;
  struct ProgramShard {
    std::mutex mutex;
    std::map<std::string, ProgramHandle, std::less<>> map;
  };
  struct LayoutShard {
    std::mutex mutex;
    // unique_ptr: entry addresses stay stable while the map rehashes/grows.
    std::map<std::string, std::unique_ptr<compiler::DataLayout>, std::less<>> map;
  };
  mutable std::array<ProgramShard, kShards> program_shards_;
  mutable std::array<LayoutShard, kShards> layout_shards_;
};

}  // namespace hpf90d::api
