// session.hpp — the experiment session, the framework's public entry point.
//
// The paper's environment is interactive (§5.2): compile once, then sweep
// directives, problem sizes, and machine sizes while comparing predicted
// and measured times. A Session makes that workflow first-class:
//
//   * it owns a MachineRegistry of named machine abstractions,
//   * it memoizes CompiledPrograms keyed by (source hash, directive
//     overrides, compiler options) so re-evaluating a variant never
//     re-runs the compiler,
//   * it memoizes DataLayouts keyed by (program, bindings, nprocs, grid
//     shape) so repeated predict/measure calls on one configuration never
//     re-resolve the two-level mapping,
//   * it executes whole ExperimentPlans batched, returning a RunReport.
//
// driver::Framework remains as a thin compatibility shim over Session.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/machine_registry.hpp"
#include "api/run_report.hpp"
#include "compiler/pipeline.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"

namespace hpf90d::api {

class ExperimentPlan;

/// One experiment configuration addressed at a *named* machine. The shape
/// is driver::ExperimentConfig plus the machine name (the driver aliases
/// this type for backward compatibility).
struct RunConfig {
  std::string machine = "ipsc860";
  int nprocs = 1;
  std::optional<std::vector<int>> grid_shape;  // e.g. {2,2}
  front::Bindings bindings;
  int runs = 3;  // simulated "measurement" repetitions
  core::PredictOptions predict;
  sim::SimOptions sim;
};

class Session {
 public:
  /// Programs are cached and shared; handles stay valid for the session's
  /// lifetime (and beyond, being shared_ptr).
  using ProgramHandle = std::shared_ptr<const compiler::CompiledProgram>;

  /// `max_nodes` sizes every machine model instantiated by this session.
  explicit Session(int max_nodes = 8) : max_nodes_(max_nodes) {}

  [[nodiscard]] MachineRegistry& machines() noexcept { return registry_; }
  [[nodiscard]] const MachineRegistry& machines() const noexcept { return registry_; }
  [[nodiscard]] int max_nodes() const noexcept { return max_nodes_; }

  /// The session-sized model for a registry name (default: the paper's
  /// testbed). Throws std::out_of_range for unregistered names.
  [[nodiscard]] const machine::MachineModel& machine(
      std::string_view name = "ipsc860") const {
    return registry_.get(name, max_nodes_);
  }

  // --- phase 1: compilation (memoized) --------------------------------------
  [[nodiscard]] ProgramHandle compile(std::string_view source,
                                      const compiler::CompilerOptions& options = {});
  [[nodiscard]] ProgramHandle compile_with_directives(
      std::string_view source, const std::vector<std::string>& overrides,
      const compiler::CompilerOptions& options = {});

  // --- phase 2: interpretation / simulated measurement -----------------------
  /// Source-driven performance prediction (layout memoized per config).
  [[nodiscard]] core::PredictionResult predict(const ProgramHandle& prog,
                                               const RunConfig& config);
  /// "Measurement" on the simulated machine.
  [[nodiscard]] sim::MeasuredResult measure(const ProgramHandle& prog,
                                            const RunConfig& config);
  /// Predict + measure + compare.
  [[nodiscard]] Comparison compare(const ProgramHandle& prog, const RunConfig& config);

  // Overloads for externally owned programs (the driver::Framework shim
  // hands these in). Layouts for external programs are built fresh — the
  // session cannot tie their lifetime to its caches.
  [[nodiscard]] core::PredictionResult predict(const compiler::CompiledProgram& prog,
                                               const RunConfig& config) const;
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const RunConfig& config) const;
  [[nodiscard]] Comparison compare(const compiler::CompiledProgram& prog,
                                   const RunConfig& config) const;

  // --- batched execution ------------------------------------------------------
  /// Executes the plan's whole cross product through the caches; the
  /// report's cache stats cover exactly this run.
  [[nodiscard]] RunReport run(const ExperimentPlan& plan);

  [[nodiscard]] const CacheStats& cache_stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t cached_programs() const noexcept {
    return program_cache_.size();
  }
  [[nodiscard]] std::size_t cached_layouts() const noexcept {
    return layout_cache_.size();
  }
  void clear_caches();

 private:
  [[nodiscard]] ProgramHandle compile_cached(std::string_view source,
                                             const std::vector<std::string>& overrides,
                                             const compiler::CompilerOptions& options);
  /// Memoized layout for a session-owned program; the cache entry shares
  /// ownership of the program so the layout's symbol-table reference stays
  /// valid.
  [[nodiscard]] const compiler::DataLayout& layout_for(const ProgramHandle& prog,
                                                       const front::Bindings& bindings,
                                                       const compiler::LayoutOptions& lo);

  [[nodiscard]] static compiler::LayoutOptions layout_options(const RunConfig& c) {
    compiler::LayoutOptions lo;
    lo.nprocs = c.nprocs;
    lo.grid_shape = c.grid_shape;
    return lo;
  }

  int max_nodes_;
  MachineRegistry registry_;
  CacheStats stats_;

  struct LayoutEntry {
    ProgramHandle prog;  // keeps prog.symbols alive for the layout
    std::unique_ptr<compiler::DataLayout> layout;
  };
  std::map<std::string, ProgramHandle, std::less<>> program_cache_;
  std::map<std::string, LayoutEntry, std::less<>> layout_cache_;
};

}  // namespace hpf90d::api
