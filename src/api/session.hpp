// session.hpp — the experiment session, the framework's public entry point.
//
// The paper's environment is interactive (§5.2): compile once, then sweep
// directives, problem sizes, and machine sizes while comparing predicted
// and measured times. A Session makes that workflow first-class:
//
//   * it owns a MachineRegistry of named machine abstractions,
//   * it memoizes CompiledPrograms keyed by (source hash, directive
//     overrides, compiler options) so re-evaluating a variant never
//     re-runs the compiler,
//   * it memoizes DataLayouts keyed by *content* — a structural fingerprint
//     of (directives, symbol extents, bindings, nprocs, grid shape) — so
//     session-owned and externally owned programs share entries, and
//     entries survive program eviction,
//   * it executes whole ExperimentPlans batched on a worker pool (sweep
//     points are independent), returning a RunReport whose records,
//     ordering, estimates, and cache statistics are identical for any
//     worker count.
//
// Thread safety: compile/predict/measure/compare and the caches they use
// may be called concurrently. Cache entries have per-entry once semantics:
// a placeholder future is inserted under the (shard/store) lock and the
// program or layout is built OUTSIDE it, so concurrent builds of distinct
// keys proceed in parallel while every unique key still misses exactly
// once — which is what keeps RunReport cache statistics deterministic
// under parallel execution. The layout store can additionally be bounded
// (layout_cache_capacity / RunOptions::layout_cache_capacity): entries are
// retired in LRU order and eviction counts surface in the cache stats.
// clear_caches() must not race with in-flight calls.
//
// Session::run executes sweeps on a worker pool whose workers each own an
// EngineArena — a reusable InterpretationEngine/Executor pair — so the
// steady-state hot path allocates nothing per point (see engine_arena.hpp).
//
// driver::Framework remains as a thin compatibility shim over Session.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/layout_store.hpp"
#include "api/machine_registry.hpp"
#include "api/run_report.hpp"
#include "api/spill.hpp"
#include "compiler/pipeline.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"

namespace hpf90d::obs {
class Registry;
class Sink;
}  // namespace hpf90d::obs

namespace hpf90d::api {

class ExperimentPlan;

/// One experiment configuration addressed at a *named* machine. The shape
/// is driver::ExperimentConfig plus the machine name (the driver aliases
/// this type for backward compatibility).
struct RunConfig {
  std::string machine = "ipsc860";
  int nprocs = 1;
  std::optional<std::vector<int>> grid_shape;  // e.g. {2,2}
  front::Bindings bindings;
  int runs = 3;  // simulated "measurement" repetitions
  core::PredictOptions predict;
  sim::SimOptions sim;
};

/// Execution options for Session::run. Sweep points are independent
/// (prediction is pure; measurement derives its noise seeds per point), so
/// the cross product is dispatched to a pool of workers.
struct RunOptions {
  /// Worker threads: 0 = std::thread::hardware_concurrency, 1 = today's
  /// serial path (no threads spawned). The RunReport's records, ordering,
  /// and estimates are identical for every setting; only wall_seconds
  /// changes. Cache statistics are also identical while the layout store
  /// is unbounded (the default) — under a finite layout_cache_capacity,
  /// concurrent inserts can evict a key one schedule would have kept, so
  /// miss/evict counts are only reproducible for serial runs or capacities
  /// covering the working set (see layout_store.hpp).
  int workers = 0;

  /// Per-worker engine arenas: each worker reuses one
  /// InterpretationEngine/Executor across its points (the allocation-free
  /// steady state). false reverts to PR 2's per-point construction — the
  /// bench baseline; records are identical either way, but the legacy path
  /// performs two layout lookups per measured point (predict + measure)
  /// where the arena path performs one, so cache *stats* differ between
  /// modes (each mode is still deterministic across worker counts).
  bool reuse_engines = true;

  /// Applied to the session's layout store before the sweep when set:
  /// the LRU capacity in entries, 0 = unbounded. nullopt leaves the
  /// session's current setting untouched.
  std::optional<std::size_t> layout_cache_capacity;

  /// Maximum sweep points interpreted per lockstep batch: consecutive
  /// points sharing a compiled program and machine are grouped into chunks
  /// of at most this many lanes and priced together through
  /// core::BatchEngine's flat cost bytecode (see batch_engine.hpp). The
  /// partition is deterministic and independent of `workers`, and the
  /// report's records/ordering/estimates/cache stats are byte-identical to
  /// the scalar path for every value. <= 1 disables batching (every point
  /// takes the scalar arena path); requires reuse_engines. Effectiveness
  /// counters land in RunReport::batch.
  int batch_size = 64;

  /// Lane re-compaction: lanes that diverge out of a lockstep batch are
  /// regrouped by divergence key (see core::EvictedLane) and re-batched
  /// with equal-key lanes from the whole chunk, so a divergent sweep keeps
  /// lane occupancy high instead of replaying most points scalar. false
  /// falls back to BatchEngine's internal end-of-batch scalar replay. The
  /// report payload is byte-identical either way (only RunReport::batch
  /// telemetry and wall time change); only meaningful when batching runs.
  bool compact_lanes = true;

  /// Speculative both-sides IF (batch path only): when an IF splits a
  /// lockstep window and both arms are cheap (loop-free, few nodes), walk
  /// both arms — each with the lane subset that takes it — instead of
  /// evicting the minority. Every lane still prices exactly what its
  /// scalar interpretation would, so the report payload is byte-identical
  /// on or off; only RunReport::batch telemetry (speculated_branches /
  /// speculated_lanes, fewer evictions) and wall time change.
  bool speculate_branches = false;

  /// Divergence-aware plan ordering: before the sweep is partitioned into
  /// chunks, reorder the points of each (machine, variant) segment so that
  /// points with equal predicted control-flow signatures — a hash of the
  /// program's critical-variable values under each problem's bindings —
  /// become lane neighbours. Sweeps whose divergence axis is interleaved
  /// with a benign axis (e.g. problems × nprocs with a binding-dependent
  /// loop bound) then enter lockstep already grouped instead of paying an
  /// eviction + refill round per window. Records are assembled back into
  /// plan order, so the report payload is byte-identical to the unsorted
  /// run for every batch size and worker count; only RunReport::batch
  /// telemetry (fewer evictions/refills) and wall time change. The
  /// reorder is deterministic (a pure function of the plan).
  bool order_points = false;

  /// Tracing sink for this run (overrides the session-level sink when
  /// set): compile, chunk-schedule, lockstep-window, scalar-replay and
  /// measure spans are recorded into it. nullptr (the default) falls back
  /// to Session::set_trace_sink's sink, and with neither attached the
  /// spans cost one predicted branch each — the report stays
  /// byte-identical to an untraced run either way (tracing never alters
  /// results, only records timings).
  obs::Sink* trace = nullptr;

  /// Metrics registry for this run: run wall time and batching
  /// effectiveness counters are published into it after the sweep
  /// (see README "Observability" for the metric names). nullptr disables.
  obs::Registry* metrics = nullptr;
};

class Session {
 public:
  /// Programs are cached and shared; handles stay valid for the session's
  /// lifetime (and beyond, being shared_ptr).
  using ProgramHandle = std::shared_ptr<const compiler::CompiledProgram>;

  /// `max_nodes` sizes every machine model instantiated by this session.
  explicit Session(int max_nodes = 8) : max_nodes_(max_nodes) {}

  [[nodiscard]] MachineRegistry& machines() noexcept { return registry_; }
  [[nodiscard]] const MachineRegistry& machines() const noexcept { return registry_; }
  [[nodiscard]] int max_nodes() const noexcept { return max_nodes_; }

  /// The session-sized model for a registry name (default: the paper's
  /// testbed). Throws std::out_of_range for unregistered names.
  [[nodiscard]] const machine::MachineModel& machine(
      std::string_view name = "ipsc860") const {
    return registry_.get(name, max_nodes_);
  }

  // --- phase 1: compilation (memoized) --------------------------------------
  [[nodiscard]] ProgramHandle compile(std::string_view source,
                                      const compiler::CompilerOptions& options = {});
  [[nodiscard]] ProgramHandle compile_with_directives(
      std::string_view source, const std::vector<std::string>& overrides,
      const compiler::CompilerOptions& options = {});

  // --- phase 2: interpretation / simulated measurement -----------------------
  /// Source-driven performance prediction (layout memoized per config).
  [[nodiscard]] core::PredictionResult predict(const ProgramHandle& prog,
                                               const RunConfig& config);
  /// "Measurement" on the simulated machine.
  [[nodiscard]] sim::MeasuredResult measure(const ProgramHandle& prog,
                                            const RunConfig& config);
  /// Predict + measure + compare.
  [[nodiscard]] Comparison compare(const ProgramHandle& prog, const RunConfig& config);

  // Overloads for externally owned programs (the driver::Framework shim
  // hands these in). The layout cache is content-addressed, so external
  // programs hit the same entries as session-owned ones: a structurally
  // identical program reuses a cached layout instead of rebuilding it.
  [[nodiscard]] core::PredictionResult predict(const compiler::CompiledProgram& prog,
                                               const RunConfig& config) const;
  [[nodiscard]] sim::MeasuredResult measure(const compiler::CompiledProgram& prog,
                                            const RunConfig& config) const;
  [[nodiscard]] Comparison compare(const compiler::CompiledProgram& prog,
                                   const RunConfig& config) const;

  // --- batched execution ------------------------------------------------------
  /// Executes the plan's whole cross product through the caches on a worker
  /// pool; the report's cache stats cover exactly this run.
  [[nodiscard]] RunReport run(const ExperimentPlan& plan,
                              const RunOptions& options = {});

  [[nodiscard]] CacheStats cache_stats() const noexcept;
  [[nodiscard]] std::size_t cached_programs() const;
  [[nodiscard]] std::size_t cached_layouts() const;

  /// LRU bound on the content-addressed layout store, in entries; 0 (the
  /// default) keeps it unbounded. Shrinking evicts immediately, coldest
  /// first; in-use layouts stay alive through their shared_ptr.
  void set_layout_cache_capacity(std::size_t capacity) {
    layout_store_.set_capacity(capacity);
  }
  [[nodiscard]] std::size_t layout_cache_capacity() const {
    return layout_store_.capacity();
  }

  // --- persistent spill tier --------------------------------------------------
  /// Attaches the disk tier behind the in-memory caches (nullptr detaches).
  /// Layout misses then probe the spill before building, fresh layouts are
  /// written through, and compile misses record their recipe for
  /// warm_start. Not safe to call concurrently with session operations; the
  /// spill itself must be thread-safe (see spill.hpp).
  void set_artifact_spill(std::shared_ptr<ArtifactSpill> spill);
  [[nodiscard]] const std::shared_ptr<ArtifactSpill>& artifact_spill() const noexcept {
    return spill_;
  }

  /// Recompiles every program recipe the spill has persisted, repopulating
  /// the program cache, and returns the number of programs warmed. A plan
  /// the daemon served before its restart then compiles-hits on every
  /// variant (the layouts load lazily from the spill on first touch).
  /// Recipes that no longer compile are skipped, not fatal. The misses
  /// counted here happen before any Session::run snapshot, so per-run
  /// cache statistics stay clean.
  std::size_t warm_start();

  // --- observability ----------------------------------------------------------
  /// Session-level tracing sink (nullptr detaches, the default): spans
  /// from every subsequent run/compile/layout build are recorded into it,
  /// including the layout store's build/spill spans. The sink must be
  /// thread-safe and outlive the session (or be detached first). Not safe
  /// to call concurrently with in-flight session operations.
  void set_trace_sink(obs::Sink* sink);
  [[nodiscard]] obs::Sink* trace_sink() const noexcept { return obs_; }

  /// Drops programs and layouts. Not safe to call concurrently with other
  /// session operations.
  void clear_caches();
  /// Drops cached programs only. Layout entries are content-addressed and
  /// self-contained, so they survive program eviction and keep serving
  /// structurally identical programs.
  void clear_program_cache();

 private:
  /// Compile-cache counters, atomically incremented by concurrent workers
  /// (the layout counters live in the LayoutStore).
  struct AtomicCacheStats {
    std::atomic<std::size_t> compile_hits{0};
    std::atomic<std::size_t> compile_misses{0};
  };

  [[nodiscard]] ProgramHandle compile_cached(std::string_view source,
                                             const std::vector<std::string>& overrides,
                                             const compiler::CompilerOptions& options);
  /// Memoized layout lookup by content fingerprint. The entry is built
  /// outside the store lock (per-entry once semantics: every unique key
  /// misses exactly once, distinct keys build in parallel). The returned
  /// shared_ptr keeps the layout alive across clear_caches() and LRU
  /// eviction.
  [[nodiscard]] LayoutStore::LayoutPtr layout_for(
      const compiler::CompiledProgram& prog, const front::Bindings& bindings,
      const compiler::LayoutOptions& lo) const;

  /// Hot-path variant: the fingerprint is rebuilt into `key_scratch`
  /// (worker-owned, reused across points), so a warm lookup performs no
  /// allocation at all.
  [[nodiscard]] LayoutStore::LayoutPtr layout_for(
      const compiler::CompiledProgram& prog, const front::Bindings& bindings,
      const compiler::LayoutOptions& lo, std::string& key_scratch) const;

  /// Hottest-path variant: the caller already finished the content digest
  /// (memoized fingerprint prefix per problem — see
  /// compiler::layout_fingerprint_prefix), so a warm lookup hashes nothing.
  [[nodiscard]] LayoutStore::LayoutPtr layout_for(
      const compiler::CompiledProgram& prog, const front::Bindings& bindings,
      const compiler::LayoutOptions& lo, std::string& key_scratch,
      const compiler::LayoutDigest& digest) const;

  /// Memoized seed_environment fold for one (program, problem) — see
  /// seed_memo_ below. `prefix` must be layout_fingerprint_prefix(prog,
  /// bindings) (run() computes it per problem for the layout digest anyway).
  [[nodiscard]] std::shared_ptr<const compiler::SeededValues> seed_for(
      const compiler::CompiledProgram& prog, const compiler::LayoutDigestState& prefix,
      const front::Bindings& bindings) const;

  [[nodiscard]] static compiler::LayoutOptions layout_options(const RunConfig& c) {
    compiler::LayoutOptions lo;
    lo.nprocs = c.nprocs;
    lo.grid_shape = c.grid_shape;
    return lo;
  }

  int max_nodes_;
  MachineRegistry registry_;
  mutable AtomicCacheStats stats_;

  /// Sharded program cache: each shard is an independently locked map of
  /// per-entry futures — the shard lock covers only the probe/placeholder
  /// insert, never a compilation.
  static constexpr std::size_t kShards = 16;
  struct ProgramShard {
    std::mutex mutex;
    std::map<std::string, std::shared_future<ProgramHandle>, std::less<>> map;
  };
  mutable std::array<ProgramShard, kShards> program_shards_;

  /// Content-addressed layout store: once-build futures + optional LRU
  /// bound (see layout_store.hpp for why it is not sharded).
  mutable LayoutStore layout_store_;

  /// Critical-variable check memo for Session::run: analyze_critical
  /// depends only on the compilation and on WHICH names are bound (never
  /// their values), so the verdict is cached per (compile_id, bound-name
  /// set) across runs — a repeated sweep skips the 250-odd tree walks.
  /// Value is the diagnostic message, empty on success.
  mutable std::mutex critical_mutex_;
  mutable std::map<std::string, std::string, std::less<>> critical_memo_;

  /// seed_environment fold memo for the sweep hot path: the fold is pure
  /// in (program symbols, binding values), both of which the layout
  /// fingerprint *prefix* digest already covers — so run() keys the memo on
  /// (compile_id, prefix digest) it computes per problem anyway and lanes
  /// carry the precomputed (id, value) list instead of re-folding the
  /// parameters on every chunk of every run. Entries are shared_ptr so a
  /// clear_caches() mid-run cannot pull values out from under live lanes.
  struct SeedMemoHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& k) const noexcept {
      return static_cast<std::size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ULL));
    }
  };
  mutable std::mutex seed_mutex_;
  mutable std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                             std::shared_ptr<const compiler::SeededValues>, SeedMemoHash>
      seed_memo_;

  /// Persistent artifact tier; null when no spill is attached.
  std::shared_ptr<ArtifactSpill> spill_;

  /// Session-level tracing sink; null keeps every span disabled.
  obs::Sink* obs_ = nullptr;
};

}  // namespace hpf90d::api
