#include "api/layout_store.hpp"

#include <optional>

#include "obs/obs.hpp"

namespace hpf90d::api {

LayoutStore::LayoutPtr LayoutStore::get_or_build(const std::string& key,
                                                 const Builder& build) {
  const compiler::LayoutDigest digest = compiler::layout_digest_of(key);
  return get_or_build(digest, [&]() -> const std::string& { return key; }, build);
}

LayoutStore::LayoutPtr LayoutStore::get_or_build(const compiler::LayoutDigest& digest,
                                                 const KeyFn& key, const Builder& build) {
  // The promise is constructed only on a miss: the hit path — the steady
  // state of a warm sweep, millions of calls — allocates nothing (a
  // promise's shared state is a heap allocation per call otherwise).
  std::optional<std::promise<LayoutPtr>> promise;
  std::shared_future<LayoutPtr> future;
  std::uint64_t owner = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = map_.find(digest); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      future = it->second.future;
    } else {
      ++misses_;
      owner = ++next_owner_;
      promise.emplace();
      lru_.push_front(digest);
      map_.emplace(digest, Entry{promise->get_future().share(), lru_.begin(), owner});
      // The new entry sits at the hot end, so eviction can only claim other
      // keys (possibly ones whose build is still in flight — their waiters
      // hold the shared state, so the build completes normally).
      evict_excess_locked();
    }
  }
  if (future.valid()) {
    LayoutPtr shared = future.get();  // rethrows a failed build
    // counted only on success: a waiter on a failing build leaves no
    // spurious hit, so misses = build attempts and hits = served layouts
    ++hits_;
    return shared;
  }

  try {
    LayoutPtr layout;
    bool fresh_build = false;
    // The spill tier answers in-memory misses before the builder runs: a
    // restarted process re-inherits every layout it (or any sibling) ever
    // built. Loaded entries are not written back; only fresh builds are.
    // Spill files are addressed by the fingerprint *string*, which is why
    // the KeyFn exists — and why it is only invoked here, on the miss path.
    if (spill_.load) {
      const obs::Span span(obs_sink_, obs::Phase::SpillLoad);
      layout = spill_.load(key());
    }
    if (layout) {
      ++spill_hits_;
    } else {
      const obs::Span span(obs_sink_, obs::Phase::LayoutBuild);
      layout = std::make_shared<const compiler::DataLayout>(build());
      fresh_build = true;
    }
    promise->set_value(layout);
    if (fresh_build && spill_.store) {
      const obs::Span span(obs_sink_, obs::Phase::SpillStore);
      spill_.store(key(), *layout);
    }
    return layout;
  } catch (...) {
    {
      // Erase only our own placeholder: eviction may already have dropped
      // it and a concurrent miss re-inserted a healthy one for this key.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = map_.find(digest); it != map_.end() && it->second.owner == owner) {
        lru_.erase(it->second.lru_it);
        map_.erase(it);
      }
    }
    promise->set_exception(std::current_exception());
    throw;
  }
}

void LayoutStore::evict_excess_locked() {
  if (capacity_ == 0) return;
  while (map_.size() > capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void LayoutStore::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_excess_locked();
}

std::size_t LayoutStore::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t LayoutStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void LayoutStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

}  // namespace hpf90d::api
