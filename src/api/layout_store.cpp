#include "api/layout_store.hpp"

namespace hpf90d::api {

LayoutStore::LayoutPtr LayoutStore::get_or_build(const std::string& key,
                                                 const Builder& build) {
  std::promise<LayoutPtr> promise;
  std::shared_future<LayoutPtr> future;
  std::uint64_t owner = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = map_.find(key); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      future = it->second.future;
    } else {
      ++misses_;
      owner = ++next_owner_;
      lru_.push_front(key);
      map_.emplace(key, Entry{promise.get_future().share(), lru_.begin(), owner});
      // The new entry sits at the hot end, so eviction can only claim other
      // keys (possibly ones whose build is still in flight — their waiters
      // hold the shared state, so the build completes normally).
      evict_excess_locked();
    }
  }
  if (future.valid()) {
    LayoutPtr shared = future.get();  // rethrows a failed build
    // counted only on success: a waiter on a failing build leaves no
    // spurious hit, so misses = build attempts and hits = served layouts
    ++hits_;
    return shared;
  }

  try {
    LayoutPtr layout;
    bool fresh_build = false;
    // The spill tier answers in-memory misses before the builder runs: a
    // restarted process re-inherits every layout it (or any sibling) ever
    // built. Loaded entries are not written back; only fresh builds are.
    if (spill_.load) layout = spill_.load(key);
    if (layout) {
      ++spill_hits_;
    } else {
      layout = std::make_shared<const compiler::DataLayout>(build());
      fresh_build = true;
    }
    promise.set_value(layout);
    if (fresh_build && spill_.store) spill_.store(key, *layout);
    return layout;
  } catch (...) {
    {
      // Erase only our own placeholder: eviction may already have dropped
      // it and a concurrent miss re-inserted a healthy one for this key.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = map_.find(key); it != map_.end() && it->second.owner == owner) {
        lru_.erase(it->second.lru_it);
        map_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void LayoutStore::evict_excess_locked() {
  if (capacity_ == 0) return;
  while (map_.size() > capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

void LayoutStore::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_excess_locked();
}

std::size_t LayoutStore::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t LayoutStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void LayoutStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

}  // namespace hpf90d::api
