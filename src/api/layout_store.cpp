#include "api/layout_store.hpp"

#include <algorithm>
#include <optional>

#include "obs/obs.hpp"

namespace hpf90d::api {

LayoutStore::LayoutPtr LayoutStore::get_or_build(const std::string& key,
                                                 const Builder& build) {
  const compiler::LayoutDigest digest = compiler::layout_digest_of(key);
  return get_or_build(digest, [&]() -> const std::string& { return key; }, build);
}

LayoutStore::LayoutPtr LayoutStore::get_or_build(const compiler::LayoutDigest& digest,
                                                 const KeyFn& key, const Builder& build) {
  // The promise is constructed only on a miss: the hit path — the steady
  // state of a warm sweep, millions of calls — allocates nothing (a
  // promise's shared state is a heap allocation per call otherwise).
  std::optional<std::promise<LayoutPtr>> promise;
  std::shared_future<LayoutPtr> future;
  std::uint64_t owner = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ReadySlot* slot = ready_find_locked(digest)) {
      lru_.splice(lru_.begin(), lru_, slot->lru_it);
      LayoutPtr shared = slot->ptr;
      ++hits_;
      return shared;
    }
    if (const auto it = map_.find(digest); it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      future = it->second.future;
    } else {
      ++misses_;
      owner = ++next_owner_;
      promise.emplace();
      lru_.push_front(digest);
      map_.emplace(digest,
                   Entry{promise->get_future().share(), nullptr, lru_.begin(), owner});
      // The new entry sits at the hot end, so eviction can only claim other
      // keys (possibly ones whose build is still in flight — their waiters
      // hold the shared state, so the build completes normally).
      evict_excess_locked();
    }
  }
  if (future.valid()) {
    LayoutPtr shared = future.get();  // rethrows a failed build
    // counted only on success: a waiter on a failing build leaves no
    // spurious hit, so misses = build attempts and hits = served layouts
    ++hits_;
    return shared;
  }

  try {
    LayoutPtr layout;
    bool fresh_build = false;
    // The spill tier answers in-memory misses before the builder runs: a
    // restarted process re-inherits every layout it (or any sibling) ever
    // built. Loaded entries are not written back; only fresh builds are.
    // Spill files are addressed by the fingerprint *string*, which is why
    // the KeyFn exists — and why it is only invoked here, on the miss path.
    if (spill_.load) {
      const obs::Span span(obs_sink_, obs::Phase::SpillLoad);
      layout = spill_.load(key());
    }
    if (layout) {
      ++spill_hits_;
    } else {
      const obs::Span span(obs_sink_, obs::Phase::LayoutBuild);
      layout = std::make_shared<const compiler::DataLayout>(build());
      fresh_build = true;
    }
    promise->set_value(layout);
    {
      // Publish the resolved pointer for the locked fast path. Guarded by
      // owner: eviction may have dropped our placeholder and a later miss
      // re-inserted a different entry under this digest.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = map_.find(digest); it != map_.end() && it->second.owner == owner) {
        it->second.ready = layout;
        ready_insert_locked(digest, layout, it->second.lru_it);
      }
    }
    if (fresh_build && spill_.store) {
      const obs::Span span(obs_sink_, obs::Phase::SpillStore);
      spill_.store(key(), *layout);
    }
    return layout;
  } catch (...) {
    {
      // Erase only our own placeholder: eviction may already have dropped
      // it and a concurrent miss re-inserted a healthy one for this key.
      const std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = map_.find(digest); it != map_.end() && it->second.owner == owner) {
        lru_.erase(it->second.lru_it);
        map_.erase(it);
      }
    }
    promise->set_exception(std::current_exception());
    throw;
  }
}

LayoutStore::LayoutPtr LayoutStore::try_get(const compiler::LayoutDigest& digest) {
  std::shared_future<LayoutPtr> future;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ReadySlot* slot = ready_find_locked(digest)) {
      lru_.splice(lru_.begin(), lru_, slot->lru_it);
      LayoutPtr shared = slot->ptr;
      ++hits_;
      return shared;
    }
    const auto it = map_.find(digest);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    future = it->second.future;
  }
  LayoutPtr shared = future.get();  // rethrows a failed in-flight build
  ++hits_;
  return shared;
}

LayoutStore::ReadySlot* LayoutStore::ready_find_locked(const compiler::LayoutDigest& digest) {
  if (ready_idx_.empty()) return nullptr;
  const std::size_t mask = ready_idx_.size() - 1;
  for (std::size_t i = DigestHash{}(digest) & mask;; i = (i + 1) & mask) {
    ReadySlot& slot = ready_idx_[i];
    if (!slot.ptr) return nullptr;
    if (slot.digest == digest) return &slot;
  }
}

void LayoutStore::ready_insert_locked(const compiler::LayoutDigest& digest,
                                      const LayoutPtr& ptr,
                                      std::list<compiler::LayoutDigest>::iterator lru_it) {
  if ((ready_n_ + 1) * 2 > ready_idx_.size()) {
    std::vector<ReadySlot> old = std::move(ready_idx_);
    ready_idx_.assign(old.empty() ? 64 : old.size() * 2, ReadySlot{});
    const std::size_t mask = ready_idx_.size() - 1;
    for (ReadySlot& s : old) {
      if (!s.ptr) continue;
      std::size_t i = DigestHash{}(s.digest) & mask;
      while (ready_idx_[i].ptr) i = (i + 1) & mask;
      ready_idx_[i] = std::move(s);
    }
  }
  const std::size_t mask = ready_idx_.size() - 1;
  std::size_t i = DigestHash{}(digest) & mask;
  while (ready_idx_[i].ptr) {
    if (ready_idx_[i].digest == digest) return;  // already indexed
    i = (i + 1) & mask;
  }
  ready_idx_[i] = ReadySlot{digest, ptr, lru_it};
  ++ready_n_;
}

void LayoutStore::ready_rebuild_locked() {
  std::fill(ready_idx_.begin(), ready_idx_.end(), ReadySlot{});
  ready_n_ = 0;
  for (auto& [digest, entry] : map_) {
    if (entry.ready) ready_insert_locked(digest, entry.ready, entry.lru_it);
  }
}

void LayoutStore::evict_excess_locked() {
  if (capacity_ == 0) return;
  bool evicted = false;
  while (map_.size() > capacity_ && !lru_.empty()) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
    evicted = true;
  }
  // Evicted entries leave dangling ready slots (and stale lru_ iterators);
  // re-derive the index. Eviction is the cold path by construction.
  if (evicted) ready_rebuild_locked();
}

void LayoutStore::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  evict_excess_locked();
}

std::size_t LayoutStore::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t LayoutStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

void LayoutStore::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  ready_idx_.clear();
  ready_n_ = 0;
}

}  // namespace hpf90d::api
