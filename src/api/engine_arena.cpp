#include "api/engine_arena.hpp"

#include "obs/obs.hpp"

namespace hpf90d::api {

void EngineArena::set_trace(obs::Sink* sink) noexcept {
  obs_sink_ = sink;
  batch_engine_.set_trace(sink);
}

const core::PredictionResult& EngineArena::predict(
    const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
    const machine::MachineModel& machine, const core::PredictOptions& options,
    const front::Bindings& bindings) {
  engine_.rebind(prog, layout, machine, options, bindings);
  engine_.interpret_into(prediction_);
  return prediction_;
}

double EngineArena::predict_total(const compiler::CompiledProgram& prog,
                                  const compiler::DataLayout& layout,
                                  const machine::MachineModel& machine,
                                  const core::PredictOptions& options,
                                  const front::Bindings& bindings) {
  return predict(prog, layout, machine, options, bindings).total;
}

sim::MeasuredResult EngineArena::measure(const compiler::CompiledProgram& prog,
                                         const compiler::DataLayout& layout,
                                         const machine::MachineModel& machine,
                                         const sim::SimOptions& options, int runs,
                                         const front::Bindings& bindings) {
  const sim::Simulator simulator(machine);
  return simulator.measure(prog, bindings, layout, options, runs, executor_);
}

const sim::MeasuredResult& EngineArena::measure_into(
    const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
    const machine::MachineModel& machine, const sim::SimOptions& options, int runs,
    const front::Bindings& bindings) {
  const sim::Simulator simulator(machine);
  simulator.measure_into(prog, bindings, layout, options, runs, executor_, measured_);
  return measured_;
}

std::span<const core::PredictionResult> EngineArena::predict_batch(
    const compiler::CompiledProgram& prog, const machine::MachineModel& machine,
    const core::PredictOptions& options, std::span<const core::BatchLane> lanes,
    bool& lockstep, core::BatchRunStats& stats,
    std::vector<core::EvictedLane>* deferred) {
  batch_predictions_.resize(lanes.size());
  lockstep = batch_engine_.interpret(prog, machine, options, lanes,
                                     batch_predictions_.data(), stats, deferred);
  if (!lockstep) {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      engine_.rebind(prog, *lanes[i].layout, machine, options, *lanes[i].bindings);
      engine_.interpret_into(batch_predictions_[i]);
    }
  }
  return batch_predictions_;
}

std::span<const sim::MeasuredResult> EngineArena::measure_batch_into(
    const compiler::CompiledProgram& prog, const machine::MachineModel& machine,
    const sim::SimOptions& options, int runs, std::span<const core::BatchLane> lanes) {
  const obs::Span span(obs_sink_, obs::Phase::MeasureBatch, lanes.size());
  lane_bindings_.clear();
  lane_layouts_.clear();
  for (const core::BatchLane& lane : lanes) {
    lane_bindings_.push_back(lane.bindings);
    lane_layouts_.push_back(lane.layout);
  }
  const sim::Simulator simulator(machine);
  simulator.measure_batch_into(prog, lane_bindings_, lane_layouts_, options, runs,
                               executor_, batch_measured_);
  return batch_measured_;
}

}  // namespace hpf90d::api
