#include "api/engine_arena.hpp"

namespace hpf90d::api {

const core::PredictionResult& EngineArena::predict(
    const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
    const machine::MachineModel& machine, const core::PredictOptions& options,
    const front::Bindings& bindings) {
  engine_.rebind(prog, layout, machine, options, bindings);
  engine_.interpret_into(prediction_);
  return prediction_;
}

double EngineArena::predict_total(const compiler::CompiledProgram& prog,
                                  const compiler::DataLayout& layout,
                                  const machine::MachineModel& machine,
                                  const core::PredictOptions& options,
                                  const front::Bindings& bindings) {
  return predict(prog, layout, machine, options, bindings).total;
}

sim::MeasuredResult EngineArena::measure(const compiler::CompiledProgram& prog,
                                         const compiler::DataLayout& layout,
                                         const machine::MachineModel& machine,
                                         const sim::SimOptions& options, int runs,
                                         const front::Bindings& bindings) {
  const sim::Simulator simulator(machine);
  return simulator.measure(prog, bindings, layout, options, runs, executor_);
}

const sim::MeasuredResult& EngineArena::measure_into(
    const compiler::CompiledProgram& prog, const compiler::DataLayout& layout,
    const machine::MachineModel& machine, const sim::SimOptions& options, int runs,
    const front::Bindings& bindings) {
  const sim::Simulator simulator(machine);
  simulator.measure_into(prog, bindings, layout, options, runs, executor_, measured_);
  return measured_;
}

}  // namespace hpf90d::api
