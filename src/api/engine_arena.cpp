#include "api/engine_arena.hpp"

namespace hpf90d::api {

double EngineArena::predict_total(const compiler::CompiledProgram& prog,
                                  const compiler::DataLayout& layout,
                                  const machine::MachineModel& machine,
                                  const core::PredictOptions& options,
                                  const front::Bindings& bindings) {
  engine_.rebind(prog, layout, machine, options, bindings);
  engine_.interpret_into(prediction_);
  return prediction_.total;
}

sim::MeasuredResult EngineArena::measure(const compiler::CompiledProgram& prog,
                                         const compiler::DataLayout& layout,
                                         const machine::MachineModel& machine,
                                         const sim::SimOptions& options, int runs,
                                         const front::Bindings& bindings) {
  const sim::Simulator simulator(machine);
  return simulator.measure(prog, bindings, layout, options, runs, executor_);
}

Comparison EngineArena::compare(const compiler::CompiledProgram& prog,
                                const compiler::DataLayout& layout,
                                const machine::MachineModel& machine,
                                const core::PredictOptions& predict_options,
                                const sim::SimOptions& sim_options, int runs,
                                const front::Bindings& bindings) {
  Comparison out;
  out.estimated = predict_total(prog, layout, machine, predict_options, bindings);
  const sim::MeasuredResult measured =
      measure(prog, layout, machine, sim_options, runs, bindings);
  out.measured_mean = measured.stats.mean;
  out.measured_min = measured.stats.min;
  out.measured_max = measured.stats.max;
  out.measured_stddev = measured.stats.stddev;
  return out;
}

}  // namespace hpf90d::api
