// layout_store.hpp — content-addressed, LRU-bounded store of DataLayouts.
//
// The session's layout cache has three jobs on the sweep hot path:
//
//   1. *Once-build semantics.* A placeholder future is inserted under the
//      store lock and the layout is built OUTSIDE it, so distinct keys never
//      serialize their make_layout work while concurrent lookups of the
//      same key still build exactly once (every unique key misses exactly
//      once — the property that keeps RunReport cache statistics
//      deterministic for any worker count).
//   2. *Bounded residency.* set_capacity(n) installs an LRU bound (0 =
//      unbounded): lookups touch their entry, inserts evict from the cold
//      end. Entries are handed out as shared_ptr, so an evicted layout
//      stays alive for whoever is still using it.
//   3. *Observability.* Hit / miss / eviction counters feed the session's
//      CacheStats.
//
// PR 2 sharded this map because entries were built under their shard lock;
// with builds moved outside the lock the critical section is an O(1) map
// probe plus a list splice, and a single mutex buys an *exact* global LRU
// order instead of a per-shard approximation.
//
// Determinism note: with capacity 0 the counters are reproducible for any
// worker count. A finite bound under concurrent inserts can evict a key one
// schedule would have kept, so re-miss/evict counts are only guaranteed
// reproducible for serial execution or capacities >= the working set.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/mapping.hpp"
#include "compiler/pipeline.hpp"

namespace hpf90d::obs {
class Sink;
}  // namespace hpf90d::obs

namespace hpf90d::api {

class LayoutStore {
 public:
  using LayoutPtr = std::shared_ptr<const compiler::DataLayout>;
  using Builder = std::function<compiler::DataLayout()>;
  /// Lazily produces the fingerprint *string* for a digest-keyed lookup.
  /// Only invoked on a miss (the spill tier addresses files by the string
  /// key), so the hot hit path never materializes a key.
  using KeyFn = std::function<const std::string&()>;

  struct Counters {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
    /// Misses satisfied from the attached spill tier (subset of `misses`:
    /// the in-memory store still missed, but no layout was built).
    std::size_t spill_hits = 0;
  };

  /// The disk tier behind the in-memory store. `load` is probed on every
  /// miss before the builder runs; `store` is called (outside the store
  /// lock) with every freshly *built* layout. Either may be null.
  struct Spill {
    std::function<std::shared_ptr<const compiler::DataLayout>(const std::string&)> load;
    std::function<void(const std::string&, const compiler::DataLayout&)> store;
  };

  explicit LayoutStore(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Returns the layout for `key`, invoking `build` (outside the store
  /// lock) when the key is absent. Concurrent callers of one key share a
  /// single build; concurrent builds of distinct keys proceed in parallel.
  /// A throwing builder propagates to every waiter and leaves the key
  /// absent, so the next lookup retries. Funnels through the digest
  /// overload below (the map is indexed by 128-bit content digest, never by
  /// the string), so string and digest callers address the same entries.
  [[nodiscard]] LayoutPtr get_or_build(const std::string& key, const Builder& build);

  /// Digest-keyed lookup — the sweep hot path. `digest` must be the
  /// layout_fingerprint_digest of the configuration; `key` is consulted
  /// only on a miss (spill addressing), so a warm lookup does no string
  /// work at all. Identical counter and LRU behaviour to the string
  /// overload.
  [[nodiscard]] LayoutPtr get_or_build(const compiler::LayoutDigest& digest,
                                       const KeyFn& key, const Builder& build);

  /// Hit-only probe: returns the layout when `digest` is resident (counting
  /// a hit and touching the LRU entry exactly like get_or_build), nullptr
  /// when absent — no miss is counted and nothing is inserted, so a caller
  /// falling back to get_or_build preserves the exact counter semantics.
  /// Exists because the warm path of a sweep point otherwise pays two
  /// std::function constructions (key + builder) per probe just to not call
  /// them.
  [[nodiscard]] LayoutPtr try_get(const compiler::LayoutDigest& digest);

  /// Attaches (or detaches, with default-constructed functions) the spill
  /// tier. Not safe to call concurrently with get_or_build.
  void set_spill(Spill spill) { spill_ = std::move(spill); }
  [[nodiscard]] bool has_spill() const noexcept { return static_cast<bool>(spill_.load); }

  /// Attaches a tracing sink (nullptr detaches): miss paths record
  /// SpillLoad / LayoutBuild / SpillStore spans. Like set_spill, not safe
  /// to call concurrently with get_or_build.
  void set_trace(obs::Sink* sink) noexcept { obs_sink_ = sink; }

  /// Installs the LRU bound (0 = unbounded), evicting immediately when the
  /// store is over the new capacity.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  [[nodiscard]] std::size_t size() const;
  void clear();

  [[nodiscard]] Counters counters() const {
    return {hits_.load(), misses_.load(), evictions_.load(), spill_hits_.load()};
  }

 private:
  struct Entry {
    std::shared_future<LayoutPtr> future;
    /// Filled in by the building thread once the future resolves: hits then
    /// copy a shared_ptr under the store lock instead of round-tripping
    /// through shared_future::get (null while the build is in flight).
    LayoutPtr ready;
    std::list<compiler::LayoutDigest>::iterator lru_it;  // position in lru_
    std::uint64_t owner = 0;  // which insert created this placeholder
  };

  /// The digest is already uniformly mixed; fold its halves for the bucket
  /// index instead of re-hashing.
  struct DigestHash {
    std::size_t operator()(const compiler::LayoutDigest& d) const noexcept {
      return static_cast<std::size_t>(d.a ^ (d.b * 0x9e3779b97f4a7c15ULL));
    }
  };

  /// Read-optimized mirror of every *resolved* entry: open addressing over
  /// a power-of-two slot array, linear probing, keyed by the (already
  /// uniformly mixed) digest. A warm hit costs one masked index and one
  /// slot line instead of the node-based map's prime modulo plus two
  /// dependent pointer chases. Slots carry the entry's lru_ iterator (list
  /// iterators survive splices) so the hit path never touches map_ at all.
  /// Guarded by mutex_; rebuilt wholesale on eviction (rare by design).
  struct ReadySlot {
    compiler::LayoutDigest digest{};
    LayoutPtr ptr;  // null = empty slot
    std::list<compiler::LayoutDigest>::iterator lru_it{};
  };

  /// Probes the ready index; caller holds mutex_. Returns nullptr on miss.
  [[nodiscard]] ReadySlot* ready_find_locked(const compiler::LayoutDigest& digest);
  /// Inserts a resolved entry, growing the slot array at 50% load.
  void ready_insert_locked(const compiler::LayoutDigest& digest, const LayoutPtr& ptr,
                           std::list<compiler::LayoutDigest>::iterator lru_it);
  /// Re-derives the index from map_ (after evictions invalidate slots).
  void ready_rebuild_locked();

  /// Evicts cold entries until size() <= capacity_; caller holds mutex_.
  void evict_excess_locked();

  mutable std::mutex mutex_;
  std::unordered_map<compiler::LayoutDigest, Entry, DigestHash> map_;
  std::vector<ReadySlot> ready_idx_;  // power-of-two size (or empty)
  std::size_t ready_n_ = 0;           // occupied slots
  std::list<compiler::LayoutDigest> lru_;  // front = most recently used
  std::size_t capacity_ = 0;    // 0 = unbounded

  std::uint64_t next_owner_ = 0;  // guarded by mutex_

  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> evictions_{0};
  std::atomic<std::size_t> spill_hits_{0};

  Spill spill_;  // set before concurrent use; functions are thread-safe
  obs::Sink* obs_sink_ = nullptr;  // miss-path span destination
};

}  // namespace hpf90d::api
