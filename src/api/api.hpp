// api.hpp — umbrella header for the hpf90d::api facade: experiment sessions
// (cached compilation + layouts), named machine models, declarative batched
// sweeps, and structured run reports.
//
//   api::Session session;                       // owns machines + caches
//   auto prog = session.compile(source);        // memoized
//   api::ExperimentPlan plan("laplace");
//   plan.source(source)
//       .machines({"ipsc860", "cluster"})
//       .nprocs({1, 2, 4, 8})
//       .add_variant("(block,*)", {"distribute d(block,*)"})
//       .add_problem("n=256", bindings);
//   api::RunReport report = session.run(plan);  // batched, cache-backed
//   std::puts(report.ascii().c_str());
#pragma once

#include "api/experiment_plan.hpp"
#include "api/machine_registry.hpp"
#include "api/run_report.hpp"
#include "api/session.hpp"
