// spill.hpp — the session's persistent artifact tier, as an interface.
//
// The experiment service (src/serve) keeps the session's content-addressed
// artifacts on disk so a restarted daemon answers warm. The session itself
// must not depend on the service layer, so the hook lives here: anything
// implementing ArtifactSpill can be attached with
// Session::set_artifact_spill, after which
//
//   * a layout-cache miss probes the spill before building (a spill hit is
//     counted in CacheStats::layout_spill_hits and costs a deserialization
//     instead of a layout resolution),
//   * a freshly built layout is written through to the spill,
//   * a program-cache miss records the compile *recipe* (source, overrides,
//     options) so Session::warm_start can repopulate the program cache
//     after a restart (programs are recompiled — the pipeline is
//     deterministic — rather than structurally serialized; see
//     compiler/serialize.hpp).
//
// Implementations must be thread-safe: the session's worker pool loads and
// stores from many threads concurrently.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "compiler/mapping.hpp"
#include "compiler/spmd_ir.hpp"

namespace hpf90d::api {

/// Everything needed to deterministically recompile a cached program.
struct ProgramRecipe {
  std::string source;
  std::vector<std::string> overrides;
  compiler::CompilerOptions options;
};

class ArtifactSpill {
 public:
  virtual ~ArtifactSpill() = default;

  /// The layout persisted under `key`, or nullopt when absent (or
  /// unreadable — a corrupt artifact must degrade to a miss, never throw).
  [[nodiscard]] virtual std::optional<compiler::DataLayout> load_layout(
      const std::string& key) = 0;

  /// Persists a freshly built layout under its content-address. Failures
  /// must be swallowed (the in-memory cache remains correct without the
  /// spill).
  virtual void store_layout(const std::string& key,
                            const compiler::DataLayout& layout) = 0;

  /// Records the recipe behind a compiled program cache entry.
  virtual void store_program(const std::string& key, const ProgramRecipe& recipe) = 0;

  /// Every persisted program recipe (for Session::warm_start).
  [[nodiscard]] virtual std::vector<ProgramRecipe> load_programs() = 0;
};

}  // namespace hpf90d::api
