// machine_registry.hpp — named machine abstractions for the experiment
// session.
//
// The SAG methodology is machine-independent (paper §3.1, §7): a program is
// "moved" between machines by swapping the System Abstraction Graph. The
// registry gives every abstraction a name — the built-in "ipsc860" cube,
// "paragon" mesh, "cluster" Ethernet LAN, "fattree" switched cluster, and
// parameterized "whatif" design-evaluation machine, plus any
// user-registered model — so experiment plans can sweep machines
// declaratively and sessions can share one instantiated MachineModel per
// (name, node count).
//
// Thread safety: every member function may be called concurrently (the
// session's worker pool resolves machines from many threads). References
// returned by get() stay valid for the registry's lifetime.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "machine/sag.hpp"
#include "machine/whatif.hpp"

namespace hpf90d::api {

/// Builds a MachineModel with `nodes` compute nodes.
using MachineFactory = std::function<machine::MachineModel(int nodes)>;

class MachineRegistry {
 public:
  /// Registers the built-in abstractions: "ipsc860" (the paper's calibrated
  /// Intel iPSC/860 cube), "paragon" (its mesh successor), "cluster" (the
  /// §7 Ethernet workstation LAN), "fattree" (a switched cluster with
  /// bisection-bandwidth-aware comm costs), and "whatif" (the cube with
  /// default — i.e. unity — design knobs; use register_whatif for custom
  /// knob settings).
  MachineRegistry();

  /// Registers (or replaces) a named abstraction. Names are case-sensitive
  /// registry keys; keep them short and lower-case like the built-ins.
  void register_machine(std::string name, MachineFactory factory,
                        std::string description = "");

  /// Registers a named what-if derivative of the iPSC/860 (paper §7 design
  /// evaluation): latency/bandwidth/cpu scale knobs applied to every SAU.
  void register_whatif(std::string name, machine::WhatIfParams params,
                       std::string description = "");

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Registered names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// One-line description for a registered name ("" when none was given).
  [[nodiscard]] std::string description(std::string_view name) const;

  /// The model for `name` at `nodes` processors. Models are instantiated
  /// lazily and cached per (name, nodes); the returned reference stays
  /// valid for the registry's lifetime. Throws std::out_of_range listing
  /// the known names when `name` is not registered.
  [[nodiscard]] const machine::MachineModel& get(std::string_view name,
                                                 int nodes = 8) const;

 private:
  struct Entry {
    MachineFactory factory;
    std::string description;
  };
  /// Looks up an entry; the caller must hold mutex_.
  [[nodiscard]] const Entry& entry_locked(std::string_view name) const;

  // Recursive: a user factory may compose from other registered models by
  // calling back into get() on the same thread.
  mutable std::recursive_mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
  // Models live on the heap so get()'s references stay valid for the
  // registry's lifetime even when a re-registration retires an instance.
  mutable std::map<std::pair<std::string, int>, std::unique_ptr<machine::MachineModel>,
                   std::less<>>
      instances_;
  mutable std::vector<std::unique_ptr<machine::MachineModel>> retired_;
};

}  // namespace hpf90d::api
