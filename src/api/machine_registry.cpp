#include "api/machine_registry.hpp"

#include <stdexcept>

#include "machine/cluster.hpp"
#include "machine/fattree.hpp"
#include "machine/ipsc860.hpp"
#include "machine/paragon.hpp"

namespace hpf90d::api {

MachineRegistry::MachineRegistry() {
  register_machine("ipsc860", [](int nodes) { return machine::make_ipsc860(nodes); },
                   "Intel iPSC/860 hypercube (the paper's calibrated testbed)");
  register_machine("paragon", [](int nodes) { return machine::make_paragon(nodes); },
                   "Intel Paragon XP/S mesh (the cube's successor, section 7 target)");
  register_machine("cluster", [](int nodes) { return machine::make_cluster(nodes); },
                   "Ethernet workstation cluster (paper section 7 extension)");
  register_machine("fattree", [](int nodes) { return machine::make_fattree(nodes); },
                   "fat-tree switched cluster (bisection-bandwidth-aware fabric)");
  register_whatif("whatif", {},
                  "parameterized iPSC/860 derivative (latency/bandwidth/cpu knobs)");
}

void MachineRegistry::register_machine(std::string name, MachineFactory factory,
                                       std::string description) {
  if (name.empty()) throw std::invalid_argument("machine name must be non-empty");
  if (!factory) throw std::invalid_argument("machine factory must be callable");
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  // Replacing a registration retires models built from the old factory:
  // future get() calls use the new factory, but references already handed
  // out stay valid (get() documents registry-lifetime validity).
  for (auto it = instances_.begin(); it != instances_.end();) {
    if (it->first.first == name) {
      retired_.push_back(std::move(it->second));
      it = instances_.erase(it);
    } else {
      ++it;
    }
  }
  entries_[std::move(name)] = Entry{std::move(factory), std::move(description)};
}

void MachineRegistry::register_whatif(std::string name, machine::WhatIfParams params,
                                      std::string description) {
  // Validate eagerly so a bad knob fails at registration, not first get().
  if (params.latency_scale <= 0 || params.bandwidth_scale <= 0 || params.cpu_scale <= 0) {
    throw std::invalid_argument("whatif machine scales must be > 0");
  }
  register_machine(
      std::move(name),
      [params](int nodes) { return machine::make_whatif(nodes, params); },
      std::move(description));
}

bool MachineRegistry::contains(std::string_view name) const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> MachineRegistry::names() const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::string MachineRegistry::description(std::string_view name) const {
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  return entry_locked(name).description;
}

const MachineRegistry::Entry& MachineRegistry::entry_locked(std::string_view name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& [n, e] : entries_) known += (known.empty() ? "" : ", ") + n;
    throw std::out_of_range("unknown machine \"" + std::string(name) +
                            "\" (registered: " + known + ")");
  }
  return it->second;
}

const machine::MachineModel& MachineRegistry::get(std::string_view name,
                                                  int nodes) const {
  if (nodes < 1) throw std::invalid_argument("machine node count must be >= 1");
  const std::lock_guard<std::recursive_mutex> lock(mutex_);
  const Entry& e = entry_locked(name);  // throws before caching for unknown names
  const auto key = std::make_pair(std::string(name), nodes);
  auto it = instances_.find(key);
  if (it == instances_.end()) {
    // Instantiation happens under the lock: concurrent first touches of one
    // (name, nodes) pair build the model exactly once, which keeps the
    // session's cache statistics deterministic across worker counts.
    it = instances_
             .emplace(key, std::make_unique<machine::MachineModel>(e.factory(nodes)))
             .first;
  }
  return *it->second;
}

}  // namespace hpf90d::api
