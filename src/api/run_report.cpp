#include "api/run_report.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "support/table.hpp"
#include "support/text.hpp"

namespace hpf90d::api {

namespace {

constexpr const char* kCsvHeader =
    "machine,variant,problem,nprocs,measured,estimated,measured_mean,"
    "measured_min,measured_max,measured_stddev";

/// CSV fields never contain commas by construction (names come from
/// registry keys and plan labels); escape defensively anyway.
std::string csv_field(const std::string& s) {
  std::string out = s;
  std::replace(out.begin(), out.end(), ',', ';');
  return out;
}

}  // namespace

const RunRecord* RunReport::best_estimated() const {
  const auto it = std::min_element(
      records.begin(), records.end(), [](const RunRecord& a, const RunRecord& b) {
        return a.comparison.estimated < b.comparison.estimated;
      });
  return it == records.end() ? nullptr : &*it;
}

double RunReport::worst_error_pct() const {
  double worst = 0;
  for (const auto& r : records) {
    if (r.measured) worst = std::max(worst, r.comparison.abs_error_pct());
  }
  return worst;
}

std::string RunReport::ascii() const {
  support::TextTable table(
      {"machine", "variant", "problem", "P", "estimated", "measured", "error"});
  for (const auto& r : records) {
    table.add_row({r.machine, r.variant, r.problem, std::to_string(r.nprocs),
                   support::format_seconds(r.comparison.estimated),
                   r.measured ? support::format_seconds(r.comparison.measured_mean)
                              : std::string("-"),
                   r.measured ? support::strfmt("%.2f%%", r.comparison.abs_error_pct())
                              : std::string("-")});
  }
  std::string out;
  if (!title.empty()) out += "# " + title + "\n";
  out += table.str();
  out += support::strfmt(
      "%zu points in %.3f s | compile cache %zu hit / %zu miss | "
      "layout cache %zu hit / %zu miss",
      records.size(), wall_seconds, cache.compile_hits, cache.compile_misses,
      cache.layout_hits, cache.layout_misses);
  if (cache.layout_evictions > 0) {
    out += support::strfmt(" / %zu evicted", cache.layout_evictions);
  }
  if (cache.layout_spill_hits > 0) {
    out += support::strfmt(" / %zu from spill", cache.layout_spill_hits);
  }
  if (cache.layout_capacity > 0) {
    out += support::strfmt(" (cap %zu)", cache.layout_capacity);
  }
  out += '\n';
  return out;
}

std::string RunReport::csv() const {
  std::string out = kCsvHeader;
  out += '\n';
  for (const auto& r : records) {
    out += support::strfmt(
        "%s,%s,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g\n",
        csv_field(r.machine).c_str(), csv_field(r.variant).c_str(),
        csv_field(r.problem).c_str(), r.nprocs, r.measured ? 1 : 0,
        r.comparison.estimated, r.comparison.measured_mean, r.comparison.measured_min,
        r.comparison.measured_max, r.comparison.measured_stddev);
  }
  return out;
}

double ReportDiff::worst_delta_pct() const {
  double worst = 0;
  for (const auto& r : records) worst = std::max(worst, std::abs(r.delta_pct()));
  return worst;
}

std::string ReportDiff::ascii() const {
  support::TextTable table({"machine", "variant", "problem", "P", "before", "after",
                            "delta", "delta%", "measured%", "sig"});
  for (const auto& r : records) {
    table.add_row({r.machine, r.variant, r.problem, std::to_string(r.nprocs),
                   support::format_seconds(r.estimated_before),
                   support::format_seconds(r.estimated_after),
                   support::strfmt("%+.3g s", r.delta()),
                   support::strfmt("%+.2f%%", r.delta_pct()),
                   r.measured ? support::strfmt("%+.2f%%", r.measured_delta_pct())
                              : std::string("-"),
                   r.measured ? (r.significant() ? std::string("*") : std::string(""))
                              : std::string("-")});
  }
  std::string out = table.str();
  out += support::strfmt("%zu points diffed | worst delta %.2f%%", records.size(),
                         worst_delta_pct());
  std::size_t significant = 0;
  for (const auto& r : records) significant += r.significant() ? 1 : 0;
  if (significant > 0) {
    out += support::strfmt(" | %zu significant measured shift%s (*)", significant,
                           significant == 1 ? "" : "s");
  }
  if (only_before + only_after > 0) {
    out += support::strfmt(" | unmatched: %zu before-only, %zu after-only",
                           only_before, only_after);
  }
  out += '\n';
  return out;
}

std::string ReportDiff::csv() const {
  std::string out =
      "machine,variant,problem,nprocs,estimated_before,estimated_after,delta,"
      "delta_pct,measured,measured_before,measured_after,measured_delta,"
      "measured_delta_pct,stddev_before,stddev_after,significant\n";
  for (const auto& r : records) {
    out += support::strfmt(
        "%s,%s,%s,%d,%.17g,%.17g,%.17g,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%d\n",
        csv_field(r.machine).c_str(), csv_field(r.variant).c_str(),
        csv_field(r.problem).c_str(), r.nprocs, r.estimated_before, r.estimated_after,
        r.delta(), r.delta_pct(), r.measured ? 1 : 0, r.measured_before,
        r.measured_after, r.measured_delta(), r.measured_delta_pct(), r.stddev_before,
        r.stddev_after, r.significant() ? 1 : 0);
  }
  return out;
}

ReportDiff RunReport::diff(const RunReport& before, const RunReport& after) {
  using Key = std::tuple<std::string, std::string, std::string, int>;
  const auto key_of = [](const RunRecord& r) {
    return Key{r.machine, r.variant, r.problem, r.nprocs};
  };
  // Plan-produced reports have unique keys, but from_csv accepts arbitrary
  // files: records are consumed pairwise per key, so duplicates diff
  // one-to-one and any surplus is counted as unmatched, never dropped.
  std::map<Key, std::deque<const RunRecord*>> after_by_key;
  for (const auto& r : after.records) after_by_key[key_of(r)].push_back(&r);

  ReportDiff out;
  for (const auto& a : before.records) {
    const auto it = after_by_key.find(key_of(a));
    if (it == after_by_key.end() || it->second.empty()) {
      ++out.only_before;
      continue;
    }
    const RunRecord* b = it->second.front();
    it->second.pop_front();
    DiffRecord d;
    d.machine = a.machine;
    d.variant = a.variant;
    d.problem = a.problem;
    d.nprocs = a.nprocs;
    d.estimated_before = a.comparison.estimated;
    d.estimated_after = b->comparison.estimated;
    if (a.measured && b->measured) {
      d.measured = true;
      d.measured_before = a.comparison.measured_mean;
      d.measured_after = b->comparison.measured_mean;
      d.stddev_before = a.comparison.measured_stddev;
      d.stddev_after = b->comparison.measured_stddev;
    }
    out.records.push_back(std::move(d));
  }
  for (const auto& [key, remaining] : after_by_key) out.only_after += remaining.size();
  return out;
}

RunReport RunReport::from_csv(std::string_view text) {
  RunReport report;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = support::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCsvHeader) {
        throw std::invalid_argument("RunReport::from_csv: unrecognized header: " +
                                    std::string(line));
      }
      saw_header = true;
      continue;
    }
    const auto cells = support::split(line, ',');
    if (cells.size() != 10) {
      throw std::invalid_argument("RunReport::from_csv: expected 10 fields, got " +
                                  std::to_string(cells.size()) + " in: " +
                                  std::string(line));
    }
    RunRecord r;
    r.machine = cells[0];
    r.variant = cells[1];
    r.problem = cells[2];
    r.nprocs = std::stoi(cells[3]);
    r.measured = std::stoi(cells[4]) != 0;
    r.comparison.estimated = std::stod(cells[5]);
    r.comparison.measured_mean = std::stod(cells[6]);
    r.comparison.measured_min = std::stod(cells[7]);
    r.comparison.measured_max = std::stod(cells[8]);
    r.comparison.measured_stddev = std::stod(cells[9]);
    report.records.push_back(std::move(r));
  }
  if (!saw_header) throw std::invalid_argument("RunReport::from_csv: empty input");
  return report;
}

}  // namespace hpf90d::api
