#include "api/run_report.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <tuple>

#include "support/table.hpp"
#include "support/text.hpp"

namespace hpf90d::api {

namespace {

constexpr const char* kCsvHeader =
    "machine,variant,problem,nprocs,measured,estimated,measured_mean,"
    "measured_min,measured_max,measured_stddev";

/// CSV fields never contain commas by construction (names come from
/// registry keys and plan labels); escape defensively anyway.
std::string csv_field(const std::string& s) {
  std::string out = s;
  std::replace(out.begin(), out.end(), ',', ';');
  return out;
}

}  // namespace

const RunRecord* RunReport::best_estimated() const {
  const auto it = std::min_element(
      records.begin(), records.end(), [](const RunRecord& a, const RunRecord& b) {
        return a.comparison.estimated < b.comparison.estimated;
      });
  return it == records.end() ? nullptr : &*it;
}

double RunReport::worst_error_pct() const {
  double worst = 0;
  for (const auto& r : records) {
    if (r.measured) worst = std::max(worst, r.comparison.abs_error_pct());
  }
  return worst;
}

std::string RunReport::ascii() const {
  support::TextTable table(
      {"machine", "variant", "problem", "P", "estimated", "measured", "error"});
  for (const auto& r : records) {
    table.add_row({r.machine, r.variant, r.problem, std::to_string(r.nprocs),
                   support::format_seconds(r.comparison.estimated),
                   r.measured ? support::format_seconds(r.comparison.measured_mean)
                              : std::string("-"),
                   r.measured ? support::strfmt("%.2f%%", r.comparison.abs_error_pct())
                              : std::string("-")});
  }
  std::string out;
  if (!title.empty()) out += "# " + title + "\n";
  out += table.str();
  out += support::strfmt(
      "%zu points in %.3f s | compile cache %zu hit / %zu miss | "
      "layout cache %zu hit / %zu miss",
      records.size(), wall_seconds, cache.compile_hits, cache.compile_misses,
      cache.layout_hits, cache.layout_misses);
  if (cache.layout_evictions > 0) {
    out += support::strfmt(" / %zu evicted", cache.layout_evictions);
  }
  if (cache.layout_spill_hits > 0) {
    out += support::strfmt(" / %zu from spill", cache.layout_spill_hits);
  }
  if (cache.layout_capacity > 0) {
    out += support::strfmt(" (cap %zu)", cache.layout_capacity);
  }
  out += '\n';
  return out;
}

std::string RunReport::csv() const {
  std::string out = kCsvHeader;
  out += '\n';
  for (const auto& r : records) {
    out += support::strfmt(
        "%s,%s,%s,%d,%d,%.17g,%.17g,%.17g,%.17g,%.17g\n",
        csv_field(r.machine).c_str(), csv_field(r.variant).c_str(),
        csv_field(r.problem).c_str(), r.nprocs, r.measured ? 1 : 0,
        r.comparison.estimated, r.comparison.measured_mean, r.comparison.measured_min,
        r.comparison.measured_max, r.comparison.measured_stddev);
  }
  return out;
}

double ReportDiff::worst_delta_pct() const {
  double worst = 0;
  for (const auto& r : records) worst = std::max(worst, std::abs(r.delta_pct()));
  return worst;
}

std::string ReportDiff::ascii() const {
  support::TextTable table({"machine", "variant", "problem", "P", "before", "after",
                            "delta", "delta%", "measured%", "sig"});
  for (const auto& r : records) {
    table.add_row({r.machine, r.variant, r.problem, std::to_string(r.nprocs),
                   support::format_seconds(r.estimated_before),
                   support::format_seconds(r.estimated_after),
                   support::strfmt("%+.3g s", r.delta()),
                   support::strfmt("%+.2f%%", r.delta_pct()),
                   r.measured ? support::strfmt("%+.2f%%", r.measured_delta_pct())
                              : std::string("-"),
                   r.measured ? (r.significant() ? std::string("*") : std::string(""))
                              : std::string("-")});
  }
  std::string out = table.str();
  out += support::strfmt("%zu points diffed | worst delta %.2f%%", records.size(),
                         worst_delta_pct());
  std::size_t significant = 0;
  for (const auto& r : records) significant += r.significant() ? 1 : 0;
  if (significant > 0) {
    out += support::strfmt(" | %zu significant measured shift%s (*)", significant,
                           significant == 1 ? "" : "s");
  }
  if (only_before + only_after > 0) {
    out += support::strfmt(" | unmatched: %zu before-only, %zu after-only",
                           only_before, only_after);
  }
  out += '\n';
  return out;
}

std::string ReportDiff::csv() const {
  std::string out =
      "machine,variant,problem,nprocs,estimated_before,estimated_after,delta,"
      "delta_pct,measured,measured_before,measured_after,measured_delta,"
      "measured_delta_pct,stddev_before,stddev_after,significant\n";
  for (const auto& r : records) {
    out += support::strfmt(
        "%s,%s,%s,%d,%.17g,%.17g,%.17g,%.17g,%d,%.17g,%.17g,%.17g,%.17g,%.17g,"
        "%.17g,%d\n",
        csv_field(r.machine).c_str(), csv_field(r.variant).c_str(),
        csv_field(r.problem).c_str(), r.nprocs, r.estimated_before, r.estimated_after,
        r.delta(), r.delta_pct(), r.measured ? 1 : 0, r.measured_before,
        r.measured_after, r.measured_delta(), r.measured_delta_pct(), r.stddev_before,
        r.stddev_after, r.significant() ? 1 : 0);
  }
  return out;
}

ReportDiff RunReport::diff(const RunReport& before, const RunReport& after) {
  using Key = std::tuple<std::string, std::string, std::string, int>;
  const auto key_of = [](const RunRecord& r) {
    return Key{r.machine, r.variant, r.problem, r.nprocs};
  };
  // Plan-produced reports have unique keys, but from_csv accepts arbitrary
  // files: records are consumed pairwise per key, so duplicates diff
  // one-to-one and any surplus is counted as unmatched, never dropped.
  std::map<Key, std::deque<const RunRecord*>> after_by_key;
  for (const auto& r : after.records) after_by_key[key_of(r)].push_back(&r);

  ReportDiff out;
  for (const auto& a : before.records) {
    const auto it = after_by_key.find(key_of(a));
    if (it == after_by_key.end() || it->second.empty()) {
      ++out.only_before;
      continue;
    }
    const RunRecord* b = it->second.front();
    it->second.pop_front();
    DiffRecord d;
    d.machine = a.machine;
    d.variant = a.variant;
    d.problem = a.problem;
    d.nprocs = a.nprocs;
    d.estimated_before = a.comparison.estimated;
    d.estimated_after = b->comparison.estimated;
    if (a.measured && b->measured) {
      d.measured = true;
      d.measured_before = a.comparison.measured_mean;
      d.measured_after = b->comparison.measured_mean;
      d.stddev_before = a.comparison.measured_stddev;
      d.stddev_after = b->comparison.measured_stddev;
    }
    out.records.push_back(std::move(d));
  }
  for (const auto& [key, remaining] : after_by_key) out.only_after += remaining.size();
  return out;
}

namespace {

// --- JSON helpers (same conventions as study_result.cpp: %.17g numbers,
// minimal escaping, a tiny recursive-descent reader that fails loudly).

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += support::strfmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jnum(double v) { return support::strfmt("%.17g", v); }
std::string jnum(std::uint64_t v) {
  return support::strfmt("%llu", static_cast<unsigned long long>(v));
}

/// Strict reader for the output of RunReport::json(): fixed key order, so
/// any schema drift (renamed, missing, or reordered keys) throws instead
/// of silently zero-filling.
class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void key(const char* name) {
    const std::string got = string();
    if (got != name) fail("expected key \"" + std::string(name) + "\", got \"" + got + '"');
    expect(':');
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            if (v > 0x7f) fail("non-ASCII \\u escape unsupported");
            c = static_cast<char>(v);
            break;
          }
          default: fail("unsupported escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' ||
          c == 'E' || c == 'i' || c == 'n' || c == 'f' || c == 'a') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    try {
      return std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return 0;  // unreachable
  }

  std::uint64_t unsigned_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ == start) fail("expected unsigned integer");
    try {
      return std::stoull(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed unsigned integer");
    }
    return 0;  // unreachable
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;  // unreachable
  }

  void end() {
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after document");
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("RunReport::from_json: " + why + " at offset " +
                                std::to_string(pos_));
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string RunReport::json() const {
  std::string out = "{\"title\":\"" + json_escape(title) + "\",";
  out += "\"wall_seconds\":" + jnum(wall_seconds) + ",";
  out += "\"cache\":{";
  out += "\"compile_hits\":" + jnum(static_cast<std::uint64_t>(cache.compile_hits)) + ",";
  out += "\"compile_misses\":" + jnum(static_cast<std::uint64_t>(cache.compile_misses)) + ",";
  out += "\"layout_hits\":" + jnum(static_cast<std::uint64_t>(cache.layout_hits)) + ",";
  out += "\"layout_misses\":" + jnum(static_cast<std::uint64_t>(cache.layout_misses)) + ",";
  out += "\"layout_evictions\":" + jnum(static_cast<std::uint64_t>(cache.layout_evictions)) + ",";
  out += "\"layout_spill_hits\":" + jnum(static_cast<std::uint64_t>(cache.layout_spill_hits)) + ",";
  out += "\"layout_capacity\":" + jnum(static_cast<std::uint64_t>(cache.layout_capacity)) + "},";
  out += "\"batch\":{";
  out += "\"batched_points\":" + jnum(static_cast<std::uint64_t>(batch.batched_points)) + ",";
  out += "\"scalar_points\":" + jnum(static_cast<std::uint64_t>(batch.scalar_points)) + ",";
  out += "\"replayed_points\":" + jnum(static_cast<std::uint64_t>(batch.replayed_points)) + ",";
  out += "\"ir_visits\":" + jnum(batch.ir_visits) + ",";
  out += "\"lane_visits\":" + jnum(batch.lane_visits) + ",";
  out += "\"evicted_lanes\":" + jnum(batch.evicted_lanes) + ",";
  out += "\"refilled_lanes\":" + jnum(batch.refilled_lanes) + ",";
  out += "\"pooled_lanes\":" + jnum(batch.pooled_lanes) + ",";
  out += "\"simd_stripes\":" + jnum(batch.simd_stripes) + ",";
  out += "\"speculated_branches\":" + jnum(batch.speculated_branches) + ",";
  out += "\"speculated_lanes\":" + jnum(batch.speculated_lanes) + "},";
  out += "\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RunRecord& r = records[i];
    if (i > 0) out += ',';
    out += "\n{\"machine\":\"" + json_escape(r.machine) + "\",";
    out += "\"variant\":\"" + json_escape(r.variant) + "\",";
    out += "\"problem\":\"" + json_escape(r.problem) + "\",";
    out += "\"nprocs\":" + std::to_string(r.nprocs) + ",";
    out += std::string("\"measured\":") + (r.measured ? "true" : "false") + ",";
    out += "\"estimated\":" + jnum(r.comparison.estimated) + ",";
    out += "\"measured_mean\":" + jnum(r.comparison.measured_mean) + ",";
    out += "\"measured_min\":" + jnum(r.comparison.measured_min) + ",";
    out += "\"measured_max\":" + jnum(r.comparison.measured_max) + ",";
    out += "\"measured_stddev\":" + jnum(r.comparison.measured_stddev) + ",";
    out += "\"phases\":{";
    out += "\"comp\":" + jnum(r.phases.comp) + ",";
    out += "\"comm\":" + jnum(r.phases.comm) + ",";
    out += "\"overhead\":" + jnum(r.phases.overhead) + ",";
    out += "\"wait\":" + jnum(r.phases.wait) + "}}";
  }
  out += "]}\n";
  return out;
}

RunReport RunReport::from_json(std::string_view text) {
  JsonReader in(text);
  RunReport report;
  in.expect('{');
  in.key("title");
  report.title = in.string();
  in.expect(',');
  in.key("wall_seconds");
  report.wall_seconds = in.number();
  in.expect(',');
  in.key("cache");
  in.expect('{');
  const auto size_field = [&in](const char* name) {
    in.key(name);
    return static_cast<std::size_t>(in.unsigned_number());
  };
  report.cache.compile_hits = size_field("compile_hits");
  in.expect(',');
  report.cache.compile_misses = size_field("compile_misses");
  in.expect(',');
  report.cache.layout_hits = size_field("layout_hits");
  in.expect(',');
  report.cache.layout_misses = size_field("layout_misses");
  in.expect(',');
  report.cache.layout_evictions = size_field("layout_evictions");
  in.expect(',');
  report.cache.layout_spill_hits = size_field("layout_spill_hits");
  in.expect(',');
  report.cache.layout_capacity = size_field("layout_capacity");
  in.expect('}');
  in.expect(',');
  in.key("batch");
  in.expect('{');
  const auto u64_field = [&in](const char* name) {
    in.key(name);
    return in.unsigned_number();
  };
  report.batch.batched_points = size_field("batched_points");
  in.expect(',');
  report.batch.scalar_points = size_field("scalar_points");
  in.expect(',');
  report.batch.replayed_points = size_field("replayed_points");
  in.expect(',');
  report.batch.ir_visits = u64_field("ir_visits");
  in.expect(',');
  report.batch.lane_visits = u64_field("lane_visits");
  in.expect(',');
  report.batch.evicted_lanes = u64_field("evicted_lanes");
  in.expect(',');
  report.batch.refilled_lanes = u64_field("refilled_lanes");
  in.expect(',');
  report.batch.pooled_lanes = u64_field("pooled_lanes");
  in.expect(',');
  report.batch.simd_stripes = u64_field("simd_stripes");
  in.expect(',');
  report.batch.speculated_branches = u64_field("speculated_branches");
  in.expect(',');
  report.batch.speculated_lanes = u64_field("speculated_lanes");
  in.expect('}');
  in.expect(',');
  in.key("records");
  in.expect('[');
  if (!in.consume(']')) {
    do {
      in.expect('{');
      RunRecord r;
      in.key("machine");
      r.machine = in.string();
      in.expect(',');
      in.key("variant");
      r.variant = in.string();
      in.expect(',');
      in.key("problem");
      r.problem = in.string();
      in.expect(',');
      in.key("nprocs");
      r.nprocs = static_cast<int>(in.number());
      in.expect(',');
      in.key("measured");
      r.measured = in.boolean();
      in.expect(',');
      const auto num_field = [&in](const char* name) {
        in.key(name);
        return in.number();
      };
      r.comparison.estimated = num_field("estimated");
      in.expect(',');
      r.comparison.measured_mean = num_field("measured_mean");
      in.expect(',');
      r.comparison.measured_min = num_field("measured_min");
      in.expect(',');
      r.comparison.measured_max = num_field("measured_max");
      in.expect(',');
      r.comparison.measured_stddev = num_field("measured_stddev");
      in.expect(',');
      in.key("phases");
      in.expect('{');
      r.phases.comp = num_field("comp");
      in.expect(',');
      r.phases.comm = num_field("comm");
      in.expect(',');
      r.phases.overhead = num_field("overhead");
      in.expect(',');
      r.phases.wait = num_field("wait");
      in.expect('}');
      in.expect('}');
      report.records.push_back(std::move(r));
    } while (in.consume(','));
    in.expect(']');
  }
  in.expect('}');
  in.end();
  return report;
}

RunReport RunReport::from_csv(std::string_view text) {
  RunReport report;
  bool saw_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = support::trim(text.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    if (!saw_header) {
      if (line != kCsvHeader) {
        throw std::invalid_argument("RunReport::from_csv: unrecognized header: " +
                                    std::string(line));
      }
      saw_header = true;
      continue;
    }
    const auto cells = support::split(line, ',');
    if (cells.size() != 10) {
      throw std::invalid_argument("RunReport::from_csv: expected 10 fields, got " +
                                  std::to_string(cells.size()) + " in: " +
                                  std::string(line));
    }
    RunRecord r;
    r.machine = cells[0];
    r.variant = cells[1];
    r.problem = cells[2];
    r.nprocs = std::stoi(cells[3]);
    r.measured = std::stoi(cells[4]) != 0;
    r.comparison.estimated = std::stod(cells[5]);
    r.comparison.measured_mean = std::stod(cells[6]);
    r.comparison.measured_min = std::stod(cells[7]);
    r.comparison.measured_max = std::stod(cells[8]);
    r.comparison.measured_stddev = std::stod(cells[9]);
    report.records.push_back(std::move(r));
  }
  if (!saw_header) throw std::invalid_argument("RunReport::from_csv: empty input");
  return report;
}

}  // namespace hpf90d::api
