// run_report.hpp — structured results of an experiment-session sweep.
//
// The paper's workflow (§5.2) is comparative: many (machine, directive,
// problem size, system size) points are interpreted and/or "measured" and
// the developer reads them side by side. RunReport is that side-by-side
// object: one RunRecord per sweep point, the session cache statistics for
// the batch, and table/CSV renderings for reports and downstream tooling.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpf90d::api {

/// Estimated-vs-measured comparison for one configuration (the Table 2
/// point metric; previously driver::Comparison).
struct Comparison {
  double estimated = 0;
  double measured_mean = 0;
  double measured_min = 0;
  double measured_max = 0;
  double measured_stddev = 0;

  /// Absolute error as a percentage of the measured time (Table 2 metric).
  [[nodiscard]] double abs_error_pct() const {
    if (measured_mean <= 0) return 0;
    return 100.0 * std::abs(estimated - measured_mean) / measured_mean;
  }
  /// Paper §5.1: interpreted performance typically lies within the
  /// measured variance band.
  [[nodiscard]] bool within_variance() const {
    const double slack = 1e-9 + 3.0 * measured_stddev +
                         0.25 * (measured_max - measured_min);
    return estimated >= measured_min - slack && estimated <= measured_max + slack;
  }
};

/// Session cache counters. Also used as a delta (per-run statistics).
struct CacheStats {
  std::size_t compile_hits = 0;
  std::size_t compile_misses = 0;
  std::size_t layout_hits = 0;
  std::size_t layout_misses = 0;
  /// Layout entries retired by the LRU bound (0 when the store is
  /// unbounded, the default).
  std::size_t layout_evictions = 0;
  /// Layout misses answered by the persistent spill tier instead of a
  /// build (0 without an attached ArtifactSpill). A warm-restarted daemon
  /// shows layout_spill_hits > 0 on the first re-run of a known plan.
  std::size_t layout_spill_hits = 0;
  /// The layout store's *effective* LRU capacity when the stats were
  /// captured (0 = unbounded). For a RunReport this is the capacity the
  /// run actually used — RunOptions::layout_cache_capacity already applied
  /// — so exported stats are self-describing. A state, not a counter:
  /// operator- carries the minuend's value instead of subtracting.
  std::size_t layout_capacity = 0;

  [[nodiscard]] CacheStats operator-(const CacheStats& rhs) const {
    return {compile_hits - rhs.compile_hits, compile_misses - rhs.compile_misses,
            layout_hits - rhs.layout_hits, layout_misses - rhs.layout_misses,
            layout_evictions - rhs.layout_evictions,
            layout_spill_hits - rhs.layout_spill_hits, layout_capacity};
  }
};

/// Predicted per-phase cost decomposition of one sweep point (the paper's
/// §3.3 interpretation categories: computation, communication, overhead,
/// wait). Filled from the interpretation for every point, measured or not;
/// study-level bottleneck attribution reads these.
struct PhaseBreakdown {
  double comp = 0;
  double comm = 0;
  double overhead = 0;
  double wait = 0;

  [[nodiscard]] double total() const noexcept { return comp + comm + overhead + wait; }
  /// The dominant phase's name ("comp" / "comm" / "overhead" / "wait");
  /// ties break in that order, and an all-zero breakdown reports "comp".
  [[nodiscard]] const char* dominant() const noexcept {
    const char* name = "comp";
    double best = comp;
    if (comm > best) { best = comm; name = "comm"; }
    if (overhead > best) { best = overhead; name = "overhead"; }
    if (wait > best) { name = "wait"; }
    return name;
  }
  /// Share of the dominant phase in the total (0 when the total is 0).
  [[nodiscard]] double dominant_fraction() const noexcept {
    const double t = total();
    if (t <= 0) return 0;
    const double m = std::max(std::max(comp, comm), std::max(overhead, wait));
    return m / t;
  }
};

/// One executed sweep point.
struct RunRecord {
  std::string machine;  // registry name, e.g. "ipsc860"
  std::string variant;  // directive-variant name, e.g. "(block,*)"
  std::string problem;  // problem-case name, e.g. "n=256"
  int nprocs = 0;
  Comparison comparison;
  PhaseBreakdown phases;  // predicted decomposition of comparison.estimated
  bool measured = false;  // false = predict-only point (measured_* are zero)
};

/// Per-point delta between two reports (cross-PR regression tracking: diff
/// yesterday's exported CSV against today's run). Estimated times diff
/// always; measured (simulator) means diff when both sides measured the
/// point, with the run-to-run variance deciding significance.
struct DiffRecord {
  std::string machine;
  std::string variant;
  std::string problem;
  int nprocs = 0;
  double estimated_before = 0;
  double estimated_after = 0;
  /// True when the point was measured in both reports (the measured_* and
  /// stddev_* fields are zero otherwise).
  bool measured = false;
  double measured_before = 0;
  double measured_after = 0;
  double stddev_before = 0;
  double stddev_after = 0;

  [[nodiscard]] double delta() const { return estimated_after - estimated_before; }
  /// Signed percentage change relative to `before` (0 when before == 0).
  [[nodiscard]] double delta_pct() const {
    return estimated_before == 0 ? 0 : 100.0 * delta() / estimated_before;
  }
  [[nodiscard]] double measured_delta() const {
    return measured_after - measured_before;
  }
  [[nodiscard]] double measured_delta_pct() const {
    return measured_before == 0 ? 0 : 100.0 * measured_delta() / measured_before;
  }
  /// Variance-aware significance for the measured-mean shift: the means
  /// moved by more than twice the combined run-to-run standard deviation
  /// (~95% under the simulator's noise model). Always false for
  /// predict-only points; a zero-variance pair flags any non-zero shift.
  [[nodiscard]] bool significant() const {
    if (!measured) return false;
    const double spread =
        std::sqrt(stddev_before * stddev_before + stddev_after * stddev_after);
    return std::abs(measured_delta()) > 2.0 * spread;
  }
};

/// The result of RunReport::diff: one DiffRecord per sweep point present in
/// both reports, plus counts of unmatched points.
struct ReportDiff {
  std::vector<DiffRecord> records;
  std::size_t only_before = 0;  // points present only in the first report
  std::size_t only_after = 0;   // points present only in the second report

  /// Largest |delta_pct| over the matched points (0 when none matched).
  [[nodiscard]] double worst_delta_pct() const;

  /// Fixed-width table of per-point deltas.
  [[nodiscard]] std::string ascii() const;

  /// Machine-readable export: a header row then one line per record.
  [[nodiscard]] std::string csv() const;
};

/// Batched-interpretation effectiveness counters for one run. Execution
/// telemetry, not results: the record payload is byte-identical for any
/// batch_size/worker combination, so these are deliberately excluded from
/// ascii()/csv()/from_csv() (they would break the oracle equality the
/// batched path guarantees).
struct BatchStats {
  std::size_t batched_points = 0;   // points priced by a lockstep walk
  std::size_t scalar_points = 0;    // points priced by the scalar engine
  std::size_t replayed_points = 0;  // points evicted and finally priced scalar
  std::uint64_t ir_visits = 0;      // SPMD nodes visited by batch walks
  std::uint64_t lane_visits = 0;    // sum of active lanes over those visits
  std::uint64_t evicted_lanes = 0;  // evictions (a point can evict repeatedly)
  std::uint64_t refilled_lanes = 0; // evicted lanes re-entering a lockstep batch
  std::uint64_t pooled_lanes = 0;   // lanes handed to the session-wide divergence
                                    // pool (chunk could not refill them) and
                                    // re-batched across chunks after the barrier
  std::uint64_t simd_stripes = 0;   // 8-lane stripes the cost bytecode evaluated
  std::uint64_t speculated_branches = 0;  // IFs priced both-sides (speculate_branches)
  std::uint64_t speculated_lanes = 0;     // lanes kept in lockstep by those IFs

  /// Mean lanes priced per bytecode visit (1.0 would match scalar cost).
  [[nodiscard]] double mean_lanes_per_visit() const {
    return ir_visits == 0 ? 0.0
                          : static_cast<double>(lane_visits) /
                                static_cast<double>(ir_visits);
  }

  /// Mean fraction of the configured lane width kept busy per visit — the
  /// occupancy the re-compaction scheduler tries to maximize.
  [[nodiscard]] double mean_occupancy(int batch_size) const {
    return batch_size <= 0 ? 0.0
                           : mean_lanes_per_visit() / static_cast<double>(batch_size);
  }
};

/// The result of Session::run over one ExperimentPlan.
struct RunReport {
  std::string title;
  std::vector<RunRecord> records;
  CacheStats cache;        // cache activity attributable to this run
  BatchStats batch;        // lockstep-batching telemetry (not in ascii/csv)
  double wall_seconds = 0; // tool time for the whole batch (the Fig 8 metric)

  /// Record with the smallest estimated time; nullptr when empty.
  [[nodiscard]] const RunRecord* best_estimated() const;

  /// Worst abs_error_pct over the measured records (0 when none measured).
  [[nodiscard]] double worst_error_pct() const;

  /// Paper-style fixed-width table (support::TextTable) plus a cache/time
  /// footer.
  [[nodiscard]] std::string ascii() const;

  /// Machine-readable export: a header row then one line per record.
  [[nodiscard]] std::string csv() const;

  /// Parses the output of csv() back into records (title/cache/wall are
  /// not part of the CSV payload). Throws std::invalid_argument on a
  /// malformed header or row.
  [[nodiscard]] static RunReport from_csv(std::string_view text);

  /// Full JSON export: unlike csv(), this carries everything — title,
  /// records (with the predicted phase breakdown), cache stats, batch
  /// telemetry, and wall time. Deterministic (%.17g doubles, fixed key
  /// order), so from_json(json()) reproduces the exact report and
  /// json(from_json(t)) == t for any t this emitted.
  [[nodiscard]] std::string json() const;

  /// Parses the output of json(). Throws std::invalid_argument on
  /// malformed input or schema drift.
  [[nodiscard]] static RunReport from_json(std::string_view text);

  /// Per-point estimated-time deltas between two reports. Points are
  /// matched by (machine, variant, problem, nprocs); unmatched points are
  /// counted, not diffed. Matched records keep `before`'s order.
  [[nodiscard]] static ReportDiff diff(const RunReport& before,
                                       const RunReport& after);
};

}  // namespace hpf90d::api
