#include "api/experiment_plan.hpp"

#include <set>
#include <stdexcept>

namespace hpf90d::api {

namespace {
const std::vector<std::string> kDefaultMachines = {"ipsc860"};
const std::vector<int> kDefaultNprocs = {1};
const std::vector<DirectiveVariant> kDefaultVariants = {{"source", {}, std::nullopt}};
const std::vector<ProblemCase> kDefaultProblems = {{"default", {}}};
}  // namespace

ExperimentPlan& ExperimentPlan::source(std::string hpf_source) {
  source_ = std::move(hpf_source);
  return *this;
}

ExperimentPlan& ExperimentPlan::machines(std::vector<std::string> names) {
  machines_ = std::move(names);
  return *this;
}

ExperimentPlan& ExperimentPlan::add_machine(std::string name) {
  machines_.push_back(std::move(name));
  return *this;
}

ExperimentPlan& ExperimentPlan::nprocs(std::vector<int> counts) {
  nprocs_ = std::move(counts);
  return *this;
}

ExperimentPlan& ExperimentPlan::add_variant(DirectiveVariant v) {
  variants_.push_back(std::move(v));
  return *this;
}

ExperimentPlan& ExperimentPlan::add_variant(std::string name,
                                            std::vector<std::string> overrides,
                                            std::optional<int> grid_rank) {
  variants_.push_back({std::move(name), std::move(overrides), grid_rank});
  return *this;
}

ExperimentPlan& ExperimentPlan::add_problem(std::string name, front::Bindings bindings) {
  problems_.push_back({std::move(name), std::move(bindings)});
  return *this;
}

ExperimentPlan& ExperimentPlan::problems_from(
    const std::vector<long long>& sizes,
    const std::function<front::Bindings(long long)>& make_bindings,
    std::string_view label_prefix) {
  if (!make_bindings) {
    throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                "\": problems_from requires a bindings factory");
  }
  for (const long long size : sizes) {
    add_problem(std::string(label_prefix) + std::to_string(size), make_bindings(size));
  }
  return *this;
}

ExperimentPlan& ExperimentPlan::problems_scaled_by_nprocs(
    const std::vector<long long>& base_sizes,
    const std::function<front::Bindings(long long)>& make_bindings,
    std::string_view label_prefix) {
  if (!make_bindings) {
    throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                "\": problems_scaled_by_nprocs requires a bindings "
                                "factory");
  }
  if (nprocs_.empty()) {
    throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                "\": set nprocs() before problems_scaled_by_nprocs "
                                "(the scaled axis consumes the processor list)");
  }
  std::vector<ScaledCase> cases;
  cases.reserve(base_sizes.size() * nprocs_.size());
  for (const long long base : base_sizes) {
    for (const int np : nprocs_) {
      const long long scaled = base * np;
      cases.push_back({{std::string(label_prefix) + std::to_string(scaled),
                        make_bindings(scaled)},
                       np});
    }
  }
  return scaled_cases(std::move(cases));
}

ExperimentPlan& ExperimentPlan::scaled_cases(std::vector<ScaledCase> cases) {
  scaled_ = std::move(cases);
  return *this;
}

ExperimentPlan& ExperimentPlan::runs(int n) {
  runs_ = n;
  return *this;
}

ExperimentPlan& ExperimentPlan::compiler_options(compiler::CompilerOptions opts) {
  compiler_opts_ = opts;
  return *this;
}

ExperimentPlan& ExperimentPlan::predict_options(core::PredictOptions opts) {
  predict_opts_ = opts;
  return *this;
}

ExperimentPlan& ExperimentPlan::sim_options(sim::SimOptions opts) {
  sim_opts_ = opts;
  return *this;
}

const std::vector<std::string>& ExperimentPlan::machine_names() const {
  return machines_.empty() ? kDefaultMachines : machines_;
}

const std::vector<int>& ExperimentPlan::nprocs_list() const {
  return nprocs_.empty() ? kDefaultNprocs : nprocs_;
}

const std::vector<DirectiveVariant>& ExperimentPlan::variants() const {
  return variants_.empty() ? kDefaultVariants : variants_;
}

const std::vector<ProblemCase>& ExperimentPlan::problems() const {
  return problems_.empty() ? kDefaultProblems : problems_;
}

std::size_t ExperimentPlan::point_count() const {
  if (scaled_by_nprocs()) {
    return machine_names().size() * variants().size() * scaled_.size();
  }
  return machine_names().size() * variants().size() * problems().size() *
         nprocs_list().size();
}

void ExperimentPlan::validate() const {
  if (source_.empty()) {
    throw std::invalid_argument("ExperimentPlan \"" + title_ + "\": no source set");
  }
  if (runs_ < 0) {
    throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                "\": runs must be >= 0");
  }
  for (int p : nprocs_list()) {
    if (p < 1) {
      throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                  "\": processor counts must be >= 1");
    }
  }
  std::set<std::string> seen;
  for (const auto& v : variants()) {
    if (!seen.insert(v.name).second) {
      throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                  "\": duplicate variant name \"" + v.name + "\"");
    }
    if (v.grid_rank && (*v.grid_rank < 1 || *v.grid_rank > 2)) {
      throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                  "\": grid_rank must be 1 or 2");
    }
  }
  if (scaled_by_nprocs()) {
    if (!problems_.empty()) {
      throw std::invalid_argument(
          "ExperimentPlan \"" + title_ +
          "\": scaled problem axis is mutually exclusive with "
          "add_problem/problems_from");
    }
    std::set<std::string> scaled_seen;
    for (const auto& sc : scaled_) {
      if (sc.nprocs < 1) {
        throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                    "\": scaled-case processor counts must be >= 1");
      }
      const std::string key = sc.problem.name + "@" + std::to_string(sc.nprocs);
      if (!scaled_seen.insert(key).second) {
        throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                    "\": duplicate scaled case \"" + sc.problem.name +
                                    "\" at P=" + std::to_string(sc.nprocs));
      }
    }
    return;
  }
  seen.clear();
  for (const auto& p : problems()) {
    if (!seen.insert(p.name).second) {
      throw std::invalid_argument("ExperimentPlan \"" + title_ +
                                  "\": duplicate problem name \"" + p.name + "\"");
    }
  }
}

}  // namespace hpf90d::api
