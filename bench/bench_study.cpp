// bench_study — Google-benchmark harness for the design-study subsystem.
//
// A §7 study is a machine-knob grid x directive variants x problems x
// nprocs lowered into ONE batched Session::run; this harness pins down the
// study-side costs on top of the sweep core bench_sweep already tracks:
//
//   * lowering      — family grid generation + registry registration,
//   * cold vs warm  — a first study in a fresh session vs the steady state
//                     a long-lived study service sees (machine models,
//                     programs, and layouts all cached),
//   * analysis      — crossover/scalability/bottleneck passes plus the
//                     deterministic CSV/JSON exports over a warm result.
//
// Run:  bench_study --benchmark_out=BENCH_study.json --benchmark_out_format=json
// (the harness injects those flags itself when none are given; STUDY_POINTS
// in the environment scales the knob grid for smoke runs, default 384
// sweep points.)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "study/study.hpp"
#include "suite/suite.hpp"

namespace {

using namespace hpf90d;

long long study_points() {
  if (const char* v = std::getenv("STUDY_POINTS")) {
    const long long n = std::atoll(v);
    if (n >= 8) return n;
  }
  return 384;
}

/// Predict-only latency x bandwidth x cpu study over pi: `points` sweep
/// points total, spread over a knob grid x {1,2,4,8} processors.
study::StudyPlan study_plan(long long points) {
  const auto& app = suite::app("pi");
  // grid cells needed at 4 nprocs per machine point
  const long long cells = std::max<long long>(2, (points + 3) / 4);
  std::vector<double> latencies;
  for (long long i = 0; i < (cells + 3) / 4; ++i) {
    latencies.push_back(0.25 * static_cast<double>(i + 1));
  }
  study::StudyPlan plan("study throughput");
  plan.source(app.source)
      .knob_axis(study::Knob::Latency, latencies)
      .knob_axis(study::Knob::Bandwidth, {1, 2})
      .knob_axis(study::Knob::Cpu, {1, 2})
      .problems_from({256}, app.bindings)
      .nprocs({1, 2, 4, 8})
      .runs(0);
  return plan;
}

api::RunOptions pooled4() {
  api::RunOptions opts;
  opts.workers = 4;
  return opts;
}

void BM_StudyLowering(benchmark::State& state) {
  const study::StudyPlan plan = study_plan(study_points());
  api::Session session;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.lower(session));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.machine_count()));
}
BENCHMARK(BM_StudyLowering)->Unit(benchmark::kMicrosecond);

void BM_ColdStudy_pooled4(benchmark::State& state) {
  const study::StudyPlan plan = study_plan(study_points());
  for (auto _ : state) {
    api::Session session;  // cold: registers machines, compiles, builds layouts
    benchmark::DoNotOptimize(study::run_study(session, plan, pooled4()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK(BM_ColdStudy_pooled4)->Unit(benchmark::kMillisecond);

/// Shared warmed session for the steady-state benchmarks.
api::Session& warm_session(const study::StudyPlan& plan) {
  static api::Session session;
  static bool warmed = false;
  if (!warmed) {
    (void)study::run_study(session, plan, pooled4());
    warmed = true;
  }
  return session;
}

void BM_WarmStudy_pooled4(benchmark::State& state) {
  const study::StudyPlan plan = study_plan(study_points());
  api::Session& session = warm_session(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(study::run_study(session, plan, pooled4()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK(BM_WarmStudy_pooled4)->Unit(benchmark::kMillisecond);

void BM_StudyAnalysisAndExports(benchmark::State& state) {
  const study::StudyPlan plan = study_plan(study_points());
  api::Session& session = warm_session(plan);
  const study::StudyResult result = study::run_study(session, plan, pooled4());
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.crossovers());
    benchmark::DoNotOptimize(result.scalability());
    benchmark::DoNotOptimize(result.csv());
    benchmark::DoNotOptimize(result.json());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(result.report.records.size()));
}
BENCHMARK(BM_StudyAnalysisAndExports)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to leaving BENCH_study.json behind so every invocation records
  // the perf trajectory; explicit --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_study.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
