// bench_serve — Google-benchmark harness for the experiment service.
//
// The service's pitch is that a long-lived daemon amortizes compile and
// layout work across tenants and across restarts (via the artifact spill).
// This harness pins down the costs a client actually feels:
//
//   * codec        — plan encode/decode round trip (the wire-side tax on
//                    every submission),
//   * warm submit  — submit-to-report latency against a hot daemon (the
//                    steady state a tenant sees),
//   * restart      — daemon start + first submit-to-report, cold (empty
//                    caches) vs warm-spill (artifact store answers the
//                    layout misses and recompiles warmed recipes), the
//                    persistence tier's reason to exist.
//
// Run:  bench_serve --benchmark_out=BENCH_serve.json --benchmark_out_format=json
// (the harness injects those flags itself when none are given.)
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "serve/client.hpp"
#include "serve/plan_codec.hpp"
#include "serve/server.hpp"

namespace {

using namespace hpf90d;

constexpr const char* kSource = R"f90(
program laplace
  parameter (n = 64)
  real u(n,n), unew(n,n)
!hpf$ template d(n,n)
!hpf$ align u(i,j) with d(i,j)
!hpf$ align unew(i,j) with d(i,j)
!hpf$ distribute d(block,*)
  forall (i = 2:n-1, j = 2:n-1) &
    unew(i,j) = 0.25*(u(i-1,j) + u(i+1,j) + u(i,j-1) + u(i,j+1))
  forall (i = 2:n-1, j = 2:n-1) u(i,j) = unew(i,j)
end program laplace
)f90";

api::ExperimentPlan bench_plan() {
  api::ExperimentPlan plan("serve bench: laplace sweep");
  plan.source(kSource)
      .nprocs({1, 2, 4, 8})
      .add_variant("(block,*)", {"distribute d(block,*)"}, 1)
      .runs(1);
  return plan;
}

std::string scratch(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("hpf90d-bench-" + std::to_string(::getpid()) + "-" + tag))
      .string();
}

void BM_PlanCodecRoundTrip(benchmark::State& state) {
  const std::string encoded = serve::encode_plan(bench_plan());
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::encode_plan(serve::decode_plan(encoded)));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(encoded.size()));
}
BENCHMARK(BM_PlanCodecRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_WarmSubmitToReport(benchmark::State& state) {
  serve::ServerOptions options;
  options.socket_path = scratch("warm.sock");
  serve::ExperimentServer server(options);
  server.start();
  serve::ServeClient client(options.socket_path, "bench");
  client.connect();
  const api::ExperimentPlan plan = bench_plan();
  (void)client.wait(client.submit(plan));  // prime the session caches
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.wait(client.submit(plan)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
  client.close();
  server.stop();
  std::filesystem::remove(options.socket_path);
}
BENCHMARK(BM_WarmSubmitToReport)->Unit(benchmark::kMillisecond);

/// start() + connect + one submit-to-report + stop(), with or without a
/// pre-seeded artifact spill. The warm variant is what a restarted daemon
/// buys: layouts answered from disk, programs recompiled from recipes.
void restart_to_first_report(benchmark::State& state, const std::string& artifacts) {
  const std::string socket = scratch("restart.sock");
  const api::ExperimentPlan plan = bench_plan();
  for (auto _ : state) {
    serve::ServerOptions options;
    options.socket_path = socket;
    options.artifact_dir = artifacts;
    serve::ExperimentServer server(options);
    server.start();
    serve::ServeClient client(options.socket_path, "bench");
    client.connect();
    benchmark::DoNotOptimize(client.wait(client.submit(plan)));
    client.close();
    server.stop();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
  std::filesystem::remove(socket);
}

void BM_RestartToFirstReport_cold(benchmark::State& state) {
  restart_to_first_report(state, "");
}
BENCHMARK(BM_RestartToFirstReport_cold)->Unit(benchmark::kMillisecond);

void BM_RestartToFirstReport_warmspill(benchmark::State& state) {
  const std::string artifacts = scratch("art");
  {
    serve::ServerOptions options;
    options.socket_path = scratch("seed.sock");
    options.artifact_dir = artifacts;
    serve::ExperimentServer server(options);
    server.start();
    serve::ServeClient client(options.socket_path, "seed");
    client.connect();
    (void)client.wait(client.submit(bench_plan()));  // seed the spill
    client.close();
    server.stop();
    std::filesystem::remove(options.socket_path);
  }
  restart_to_first_report(state, artifacts);
  std::filesystem::remove_all(artifacts);
}
BENCHMARK(BM_RestartToFirstReport_warmspill)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to leaving BENCH_serve.json behind so every invocation records
  // the perf trajectory; explicit --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_serve.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
