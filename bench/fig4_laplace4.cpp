// fig4_laplace4 — regenerates paper Figure 4: Laplace solver estimated and
// measured execution times on 4 processors, for the three distributions,
// over problem sizes 16..256. Each distribution is one ExperimentPlan
// (problem-size sweep at P=4) run batched through the shared session.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/report.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 4: Laplace Solver (4 Procs) - Estimated/Measured Times\n\n");
  for (const char* id : {"laplace_bb", "laplace_bx", "laplace_xb"}) {
    const auto& app = suite::app(id);
    api::ExperimentPlan plan(app.name);
    plan.source(app.source)
        .nprocs({4})
        .add_variant(bench::variant_for(app))
        .problems_from(app.problem_sizes, app.bindings)
        .runs(3);
    const api::RunReport report = bench::session().run(plan);

    // one machine, one variant, one system size: records follow problem order
    std::vector<std::pair<long long, driver::Comparison>> series;
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      series.emplace_back(app.problem_sizes[i], report.records[i].comparison);
    }
    const std::string title =
        app.name + (app.id == "laplace_bb" ? " - 2x2 Proc Grid" : " - 4 Procs");
    std::printf("%s", driver::render_series(title, series).c_str());
    std::printf("\n");
  }
  return 0;
}
