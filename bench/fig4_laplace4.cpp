// fig4_laplace4 — regenerates paper Figure 4: Laplace solver estimated and
// measured execution times on 4 processors, for the three distributions,
// over problem sizes 16..256.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/report.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 4: Laplace Solver (4 Procs) - Estimated/Measured Times\n\n");
  for (const char* id : {"laplace_bb", "laplace_bx", "laplace_xb"}) {
    const auto& app = suite::app(id);
    auto prog = bench::compile_app(app);
    std::vector<std::pair<long long, driver::Comparison>> series;
    for (long long n : app.problem_sizes) {
      series.emplace_back(
          n, bench::framework().compare(prog, bench::config_for(app, n, 4)));
    }
    const std::string title =
        app.name + (app.id == "laplace_bb" ? " - 2x2 Proc Grid" : " - 4 Procs");
    std::printf("%s", driver::render_series(title, series).c_str());
    std::printf("\n");
  }
  return 0;
}
