// fig7_financial_profile — regenerates paper Figures 6 and 7: the phases of
// the parallel stock option pricing model and the interpreted performance
// profile (computation / communication / overhead per phase) at 4
// processors, problem size 256.
#include <cstdio>

#include "bench_util.hpp"
#include "core/aag.hpp"
#include "core/output.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  const auto& app = suite::app("finance");
  const auto prog = bench::compile_app_cached(app);
  core::SynchronizedAAG saag(*prog);

  std::printf("Figure 6: Financial Model - Application Phases\n");
  std::printf("  Phase 1: Create Stock Price Lattice (shift)\n");
  std::printf("  Phase 2: Compute Call Price\n\n");

  const auto cfg = bench::config_for(app, 256, 4);
  const auto pred = bench::session().predict(prog, cfg);
  core::OutputModule out(saag, pred);

  // phase 1 = the lattice do-loop subtree; phase 2 = the top-level payoff
  // foralls after it
  core::AAUMetric phase1, phase2;
  for (const auto& aau : saag.aaus()) {
    if (aau.kind == core::AAUKind::Iter) phase1 = out.sub_aag(aau.id);
  }
  bool after_loop = false;
  for (int child : saag.at(saag.root()).children) {
    const auto& aau = saag.at(child);
    if (aau.kind == core::AAUKind::Iter) {
      after_loop = true;
      continue;
    }
    if (after_loop && aau.kind != core::AAUKind::IO) phase2.add(out.sub_aag(child));
  }

  std::printf("Figure 7: Stock Option Pricing - Interpreted Performance Profile\n");
  std::printf("  Procs = 4; Size = 256\n");
  support::TextTable table({"Phase", "Comp Time", "Comm Time", "Ovhd Time"});
  auto us = [](double s) { return support::strfmt("%.0f usec", s * 1e6); };
  table.add_row({"Phase 1", us(phase1.comp), us(phase1.comm), us(phase1.overhead)});
  table.add_row({"Phase 2", us(phase2.comp), us(phase2.comm), us(phase2.overhead)});
  std::printf("%s", table.str().c_str());
  std::printf("(paper shape: phase 1 dominated by communication from the shifts;\n"
              " phase 2 requires no communication)\n");

  // cross-check against the simulated measurement
  const auto meas = bench::session().measure(prog, cfg);
  std::printf("\nsimulated-measured totals for comparison: %s (estimated %s)\n",
              support::format_seconds(meas.stats.mean).c_str(),
              support::format_seconds(pred.total).c_str());
  return 0;
}
