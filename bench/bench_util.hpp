// bench_util.hpp — shared helpers for the paper-reproduction benches. All
// benches run through the experiment-session API (api::Session /
// ExperimentPlan); the legacy driver::Framework shim is no longer used.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

#include "api/api.hpp"
#include "suite/suite.hpp"

namespace hpf90d::bench {

/// The shared experiment session: one machine registry plus compilation and
/// layout caches for every bench in a process.
inline api::Session& session() {
  static api::Session s;
  return s;
}

/// Session-cached compilation of a suite application.
inline api::Session::ProgramHandle compile_app_cached(const suite::BenchmarkApp& app) {
  return app.directive_overrides.empty()
             ? session().compile(app.source)
             : session().compile_with_directives(app.source, app.directive_overrides);
}

/// FULL=1 in the environment runs the complete paper sweeps (the N-body
/// 4096-particle points take a few minutes of functional simulation);
/// the default trims the heaviest points so `for b in build/bench/*` stays
/// quick.
inline bool full_sweep() {
  const char* v = std::getenv("FULL");
  return v != nullptr && std::string(v) == "1";
}

/// The forced grid rank for an application's plan variant: the Laplace
/// (BLOCK,BLOCK) rows run on the paper's near-square 2-D grids.
inline std::optional<int> grid_rank_for(const suite::BenchmarkApp& app) {
  return app.id == "laplace_bb" ? std::optional<int>(2) : std::nullopt;
}

/// The plan variant for a suite application: its directive overrides plus
/// the forced grid rank.
inline api::DirectiveVariant variant_for(const suite::BenchmarkApp& app) {
  return {app.name, app.directive_overrides, grid_rank_for(app)};
}

inline api::RunConfig config_for(const suite::BenchmarkApp& app, long long size,
                                 int nprocs, int runs = 3) {
  api::RunConfig cfg;
  cfg.nprocs = nprocs;
  cfg.bindings = app.bindings(size);
  cfg.runs = runs;
  if (grid_rank_for(app)) {
    cfg.grid_shape = compiler::ProcGrid::factorized(nprocs, *grid_rank_for(app)).shape;
  }
  return cfg;
}

}  // namespace hpf90d::bench
