// bench_util.hpp — shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdlib>
#include <string>

#include "driver/framework.hpp"
#include "suite/suite.hpp"

namespace hpf90d::bench {

inline driver::Framework& framework() {
  static driver::Framework fw;
  return fw;
}

inline compiler::CompiledProgram compile_app(const suite::BenchmarkApp& app) {
  return app.directive_overrides.empty()
             ? framework().compile(app.source)
             : framework().compile_with_directives(app.source, app.directive_overrides);
}

/// FULL=1 in the environment runs the complete paper sweeps (the N-body
/// 4096-particle points take a few minutes of functional simulation);
/// the default trims the heaviest points so `for b in build/bench/*` stays
/// quick.
inline bool full_sweep() {
  const char* v = std::getenv("FULL");
  return v != nullptr && std::string(v) == "1";
}

inline driver::ExperimentConfig config_for(const suite::BenchmarkApp& app,
                                           long long size, int nprocs, int runs = 3) {
  driver::ExperimentConfig cfg;
  cfg.nprocs = nprocs;
  cfg.bindings = app.bindings(size);
  cfg.runs = runs;
  if (app.id == "laplace_bb") {
    cfg.grid_shape = nprocs == 4   ? std::optional<std::vector<int>>({2, 2})
                     : nprocs == 8 ? std::optional<std::vector<int>>({2, 4})
                     : nprocs == 2 ? std::optional<std::vector<int>>({1, 2})
                                   : std::optional<std::vector<int>>({1, 1});
  }
  return cfg;
}

}  // namespace hpf90d::bench
