// ablations — design-choice ablation benches called out in DESIGN.md §5,
// driven through the experiment-session API (api::Session):
//   1. message vectorization on/off (compiler option),
//   2. network contention modelling on/off in the simulator,
//   3. collective algorithm: recursive tree vs linear,
//   4. the predictor's comp/comm overlap heuristic (invariant-comm
//      pipelining) visible through per-iteration ghost exchanges.
#include <cstdio>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

using namespace hpf90d;

namespace {

void msgvec_ablation() {
  std::printf("Ablation 1: message vectorization (Laplace (Blk,*), n=128, P=4)\n");
  const auto& app = suite::app("laplace_bx");
  support::TextTable table({"msgvec", "estimated", "note"});
  for (bool on : {true, false}) {
    compiler::CompilerOptions copts;
    copts.message_vectorization = on;
    const auto prog = bench::session().compile_with_directives(
        app.source, app.directive_overrides, copts);
    const auto pred = bench::session().predict(prog, bench::config_for(app, 128, 4));
    table.add_row({on ? "on" : "off", support::format_seconds(pred.total),
                   on ? "one aggregate ghost message per sweep"
                      : "one message per boundary element"});
  }
  std::printf("%s\n", table.str().c_str());
}

void contention_ablation() {
  std::printf("Ablation 2: simulator network contention (LFK 14, n=1024, P=8)\n");
  const auto& app = suite::app("lfk14");
  const auto prog = bench::compile_app_cached(app);
  support::TextTable table({"contention", "measured mean"});
  for (bool on : {true, false}) {
    auto cfg = bench::config_for(app, 1024, 8);
    cfg.sim.contention = on;
    const auto meas = bench::session().measure(prog, cfg);
    table.add_row({on ? "on" : "off", support::format_seconds(meas.stats.mean)});
  }
  std::printf("%s\n", table.str().c_str());
}

void collective_ablation() {
  std::printf("Ablation 3: collective algorithm (PI, n=4096, P=8)\n");
  const auto& app = suite::app("pi");
  const auto prog = bench::compile_app_cached(app);
  support::TextTable table({"algorithm", "estimated", "measured mean"});
  for (auto algo : {machine::CollectiveAlgo::RecursiveTree,
                    machine::CollectiveAlgo::Linear}) {
    auto cfg = bench::config_for(app, 4096, 8);
    cfg.predict.collective = algo;
    cfg.sim.collective = algo;
    const auto pred = bench::session().predict(prog, cfg);
    const auto meas = bench::session().measure(prog, cfg);
    table.add_row({algo == machine::CollectiveAlgo::RecursiveTree
                       ? "recursive halving/doubling"
                       : "linear",
                   support::format_seconds(pred.total),
                   support::format_seconds(meas.stats.mean)});
  }
  std::printf("%s\n", table.str().c_str());
}

void overlap_ablation() {
  std::printf("Ablation 4: predictor memory heuristic visibility (LFK 9)\n");
  // the LFK 9 row of Table 2 is driven by the unit-stride streaming
  // assumption; show the error trend across sizes (cache-resident to
  // memory-bound)
  const auto& app = suite::app("lfk9");
  const auto prog = bench::compile_app_cached(app);
  support::TextTable table({"n", "estimated", "measured", "error"});
  for (long long n : {128LL, 512LL, 2048LL}) {
    const auto cmp = bench::session().compare(prog, bench::config_for(app, n, 1));
    table.add_row({std::to_string(n), support::format_seconds(cmp.estimated),
                   support::format_seconds(cmp.measured_mean),
                   support::strfmt("%.2f%%", cmp.abs_error_pct())});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main() {
  msgvec_ablation();
  contention_ablation();
  collective_ablation();
  overlap_ablation();
  const auto& stats = bench::session().cache_stats();
  std::printf("session caches: compile %zu hit / %zu miss, layout %zu hit / %zu miss\n",
              stats.compile_hits, stats.compile_misses, stats.layout_hits,
              stats.layout_misses);
  return 0;
}
