// fig8_experimentation_time — regenerates paper Figure 8: experimentation
// time for the three Laplace implementations using the interpretive
// framework versus measurement on the iPSC/860.
//
// The interpreter column is *measured here* — each implementation is one
// predict-only ExperimentPlan (all problem sizes on one system size) and
// RunReport::wall_seconds is the tool time, plus the paper's ~10 minutes of
// interactive user time per implementation. The iPSC/860 column uses the
// paper's reported workflow constants: editing code, cross-compiling and
// linking, transferring the executable to the front end, loading it onto
// the cube, and running each instance — 27 to ~60 minutes per
// implementation. A final section re-runs the warmed sweeps serially and on
// the session's worker pool: plan points are independent, so the pool cuts
// the tool time by roughly the core count while producing an identical
// report.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 8: Experimentation Time - Laplace Solver\n\n");

  // paper workflow constants (minutes) for the measurement path
  const double ipsc_minutes[3] = {38.0, 27.0, 58.0};  // (Blk,Blk), (Blk,*), (*,Blk)
  const double interactive_minutes = 10.0;  // menu-driven parameter entry

  support::TextTable table({"Implementation", "Interpreter (min)",
                            "interpreter tool time (s)", "iPSC/860 workflow (min)"});
  const char* ids[3] = {"laplace_bb", "laplace_bx", "laplace_xb"};
  for (int k = 0; k < 3; ++k) {
    const auto& app = suite::app(ids[k]);
    // the experiment of §5.2.1: all problem sizes on one system size
    api::ExperimentPlan plan(app.name);
    plan.source(app.source)
        .nprocs({4})
        .add_variant(bench::variant_for(app))
        .problems_from(app.problem_sizes, app.bindings)
        .runs(0);
    const api::RunReport report = bench::session().run(plan);
    table.add_row(
        {app.name,
         support::strfmt("%.1f", interactive_minutes + report.wall_seconds / 60.0),
         support::strfmt("%.3f", report.wall_seconds),
         support::strfmt("%.0f", ipsc_minutes[k])});
  }
  std::printf("%s", table.str().c_str());
  std::printf("(paper: ~10 min per implementation with the interpreter vs 27-60 min\n"
              " per implementation with edit/cross-compile/transfer/load/run cycles)\n");

  // Parallel sweep engine: the three implementations as one combined
  // measured sweep (3 variants x problem sizes x 4 system sizes), executed
  // serially and then on the worker pool. The reports are identical
  // (records, ordering, estimates, cache stats); only the tool time
  // changes, by up to the core count.
  const auto& base = suite::app("laplace_bb");
  api::ExperimentPlan combined("combined Laplace sweep");
  combined.source(base.source).nprocs({1, 2, 4, 8}).runs(bench::full_sweep() ? 3 : 1);
  for (const char* id : ids) {
    combined.add_variant(bench::variant_for(suite::app(id)));
  }
  combined.problems_from(base.problem_sizes, base.bindings);

  api::RunOptions serial_opts;
  serial_opts.workers = 1;
  (void)bench::session().run(combined, serial_opts);  // warm the caches
  const api::RunReport serial = bench::session().run(combined, serial_opts);
  const api::RunReport pooled = bench::session().run(combined);  // hardware_concurrency
  std::printf("\nParallel sweep engine: %zu measured points, %u hardware threads\n",
              serial.records.size(), std::thread::hardware_concurrency());
  std::printf("  serial tool time: %.3f s | worker pool: %.3f s | speedup %.2fx\n",
              serial.wall_seconds, pooled.wall_seconds,
              pooled.wall_seconds > 0 ? serial.wall_seconds / pooled.wall_seconds : 0.0);
  std::printf("  (reports are identical for any worker count: %s)\n",
              serial.csv() == pooled.csv() ? "verified" : "MISMATCH");
  return 0;
}
