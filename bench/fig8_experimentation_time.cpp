// fig8_experimentation_time — regenerates paper Figure 8: experimentation
// time for the three Laplace implementations using the interpretive
// framework versus measurement on the iPSC/860.
//
// The interpreter column is *measured here* — each implementation is one
// predict-only ExperimentPlan (all problem sizes on one system size) and
// RunReport::wall_seconds is the tool time, plus the paper's ~10 minutes of
// interactive user time per implementation. The iPSC/860 column uses the
// paper's reported workflow constants: editing code, cross-compiling and
// linking, transferring the executable to the front end, loading it onto
// the cube, and running each instance — 27 to ~60 minutes per
// implementation.
#include <cstdio>

#include "bench_util.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 8: Experimentation Time - Laplace Solver\n\n");

  // paper workflow constants (minutes) for the measurement path
  const double ipsc_minutes[3] = {38.0, 27.0, 58.0};  // (Blk,Blk), (Blk,*), (*,Blk)
  const double interactive_minutes = 10.0;  // menu-driven parameter entry

  support::TextTable table({"Implementation", "Interpreter (min)",
                            "interpreter tool time (s)", "iPSC/860 workflow (min)"});
  const char* ids[3] = {"laplace_bb", "laplace_bx", "laplace_xb"};
  for (int k = 0; k < 3; ++k) {
    const auto& app = suite::app(ids[k]);
    // the experiment of §5.2.1: all problem sizes on one system size
    api::ExperimentPlan plan(app.name);
    plan.source(app.source)
        .nprocs({4})
        .add_variant(app.name, app.directive_overrides, bench::grid_rank_for(app))
        .runs(0);
    for (long long n : app.problem_sizes) {
      plan.add_problem(support::strfmt("n=%lld", n), app.bindings(n));
    }
    const api::RunReport report = bench::session().run(plan);
    table.add_row(
        {app.name,
         support::strfmt("%.1f", interactive_minutes + report.wall_seconds / 60.0),
         support::strfmt("%.3f", report.wall_seconds),
         support::strfmt("%.0f", ipsc_minutes[k])});
  }
  std::printf("%s", table.str().c_str());
  std::printf("(paper: ~10 min per implementation with the interpreter vs 27-60 min\n"
              " per implementation with edit/cross-compile/transfer/load/run cycles)\n");
  return 0;
}
