// fig5_laplace8 — regenerates paper Figure 5: Laplace solver estimated and
// measured execution times on 8 processors (2x4 grid for (BLOCK,BLOCK)).
#include <cstdio>

#include "bench_util.hpp"
#include "driver/report.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 5: Laplace Solver (8 Procs) - Estimated/Measured Times\n\n");
  for (const char* id : {"laplace_bb", "laplace_bx", "laplace_xb"}) {
    const auto& app = suite::app(id);
    auto prog = bench::compile_app(app);
    std::vector<std::pair<long long, driver::Comparison>> series;
    for (long long n : app.problem_sizes) {
      series.emplace_back(
          n, bench::framework().compare(prog, bench::config_for(app, n, 8)));
    }
    const std::string title =
        app.name + (app.id == "laplace_bb" ? " - 2x4 Proc Grid" : " - 8 Procs");
    std::printf("%s", driver::render_series(title, series).c_str());
    std::printf("\n");
  }
  return 0;
}
