// fig3_distributions — regenerates paper Figure 3: the three data
// distributions of the Laplace solver template on 4 processors,
// (BLOCK,BLOCK) / (BLOCK,*) / (*,BLOCK), as ownership pictures.
#include <cstdio>

#include "bench_util.hpp"
#include "compiler/pipeline.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Figure 3: Laplace Solver - Data Distributions (4 processors)\n\n");
  for (const char* id : {"laplace_bb", "laplace_bx", "laplace_xb"}) {
    const auto& app = suite::app(id);
    const auto prog = bench::compile_app_cached(app);
    auto cfg = bench::config_for(app, 64, 4);
    compiler::LayoutOptions lo;
    lo.nprocs = cfg.nprocs;
    lo.grid_shape = cfg.grid_shape;
    const auto layout = compiler::make_layout(*prog, cfg.bindings, lo);
    std::printf("%s:\n%s\n", app.name.c_str(),
                layout.ownership_picture(prog->symbols.find("u"), 4, 4).c_str());
  }
  return 0;
}
