// micro_framework — google-benchmark microbenchmarks of the framework
// itself: compilation, abstraction, interpretation, and simulation cost as
// problem size grows. These support the paper's §5.3 cost-effectiveness
// claim quantitatively: interpretation cost is independent of problem size
// while simulation (a stand-in for running on the machine) is not.
// Prediction/measurement run through the shared api::Session (cached
// programs + content-addressed layouts); BM_Compile calls the compiler
// directly so it measures real compilation, not a cache hit.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "compiler/pipeline.hpp"
#include "core/aag.hpp"

using namespace hpf90d;

namespace {

compiler::CompiledProgram compile_fresh(const suite::BenchmarkApp& app) {
  return app.directive_overrides.empty()
             ? compiler::compile(app.source)
             : compiler::compile_with_directives(app.source, app.directive_overrides);
}

void BM_Compile(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  for (auto _ : state) {
    auto prog = compile_fresh(app);
    benchmark::DoNotOptimize(prog.node_count);
  }
}
BENCHMARK(BM_Compile);

void BM_AbstractionParse(benchmark::State& state) {
  const auto prog = bench::compile_app_cached(suite::app("finance"));
  for (auto _ : state) {
    core::SynchronizedAAG saag(*prog);
    benchmark::DoNotOptimize(saag.aaus().size());
  }
}
BENCHMARK(BM_AbstractionParse);

void BM_Interpretation(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  const auto prog = bench::compile_app_cached(app);
  const long long n = state.range(0);
  const auto cfg = bench::config_for(app, n, 8);
  for (auto _ : state) {
    const auto pred = bench::session().predict(prog, cfg);
    benchmark::DoNotOptimize(pred.total);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_Interpretation)->Arg(16)->Arg(64)->Arg(256);

void BM_Simulation(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  const auto prog = bench::compile_app_cached(app);
  const long long n = state.range(0);
  auto cfg = bench::config_for(app, n, 8);
  cfg.runs = 1;
  for (auto _ : state) {
    const auto meas = bench::session().measure(prog, cfg);
    benchmark::DoNotOptimize(meas.stats.mean);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_Simulation)->Arg(16)->Arg(64)->Arg(256);

void BM_PredictAllSuiteApps(benchmark::State& state) {
  std::vector<api::Session::ProgramHandle> progs;
  for (const auto& app : suite::validation_suite()) {
    progs.push_back(bench::compile_app_cached(app));
  }
  for (auto _ : state) {
    double total = 0;
    std::size_t k = 0;
    for (const auto& app : suite::validation_suite()) {
      total += bench::session()
                   .predict(progs[k++], bench::config_for(app, app.problem_sizes.front(), 4))
                   .total;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PredictAllSuiteApps);

/// The tentpole's headline: one predict-only Laplace sweep executed serially
/// vs on the worker pool (identical RunReports; only wall time differs).
void BM_ParallelSweep(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  api::ExperimentPlan plan(app.name);
  plan.source(app.source)
      .nprocs({1, 2, 4, 8})
      .add_variant(bench::variant_for(app))
      .problems_from(app.problem_sizes, app.bindings)
      .runs(0);
  api::RunOptions opts;
  opts.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto report = bench::session().run(plan, opts);
    benchmark::DoNotOptimize(report.records.size());
  }
  state.SetLabel("workers=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(0);

}  // namespace

BENCHMARK_MAIN();
