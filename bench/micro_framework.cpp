// micro_framework — google-benchmark microbenchmarks of the framework
// itself: compilation, abstraction, interpretation, and simulation cost as
// problem size grows. These support the paper's §5.3 cost-effectiveness
// claim quantitatively: interpretation cost is independent of problem size
// while simulation (a stand-in for running on the machine) is not.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/aag.hpp"

using namespace hpf90d;

namespace {

void BM_Compile(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  for (auto _ : state) {
    auto prog = bench::compile_app(app);
    benchmark::DoNotOptimize(prog.node_count);
  }
}
BENCHMARK(BM_Compile);

void BM_AbstractionParse(benchmark::State& state) {
  const auto& app = suite::app("finance");
  auto prog = bench::compile_app(app);
  for (auto _ : state) {
    core::SynchronizedAAG saag(prog);
    benchmark::DoNotOptimize(saag.aaus().size());
  }
}
BENCHMARK(BM_AbstractionParse);

void BM_Interpretation(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  auto prog = bench::compile_app(app);
  const long long n = state.range(0);
  const auto cfg = bench::config_for(app, n, 8);
  for (auto _ : state) {
    const auto pred = bench::framework().predict(prog, cfg);
    benchmark::DoNotOptimize(pred.total);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_Interpretation)->Arg(16)->Arg(64)->Arg(256);

void BM_Simulation(benchmark::State& state) {
  const auto& app = suite::app("laplace_bx");
  auto prog = bench::compile_app(app);
  const long long n = state.range(0);
  auto cfg = bench::config_for(app, n, 8);
  cfg.runs = 1;
  for (auto _ : state) {
    const auto meas = bench::framework().measure(prog, cfg);
    benchmark::DoNotOptimize(meas.stats.mean);
  }
  state.SetLabel("n=" + std::to_string(n));
}
BENCHMARK(BM_Simulation)->Arg(16)->Arg(64)->Arg(256);

void BM_PredictAllSuiteApps(benchmark::State& state) {
  std::vector<compiler::CompiledProgram> progs;
  for (const auto& app : suite::validation_suite()) progs.push_back(bench::compile_app(app));
  for (auto _ : state) {
    double total = 0;
    std::size_t k = 0;
    for (const auto& app : suite::validation_suite()) {
      total += bench::framework()
                   .predict(progs[k++], bench::config_for(app, app.problem_sizes.front(), 4))
                   .total;
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PredictAllSuiteApps);

}  // namespace

BENCHMARK_MAIN();
