// table1_suite — regenerates paper Table 1: the validation application set.
#include <cstdio>

#include "bench_util.hpp"
#include "support/table.hpp"

int main() {
  using namespace hpf90d;
  std::printf("Table 1: Validation Application Set\n");
  support::TextTable table({"Name", "Description", "Problem sizes", "AAUs"});
  std::string group;
  for (const auto& app : suite::validation_suite()) {
    std::string g = app.id.starts_with("lfk")   ? "Livermore Fortran Kernels (LFK)"
                    : app.id.starts_with("pbs") ? "Purdue Benchmarking Set (PBS)"
                                                : "Applications";
    if (g != group) {
      table.add_rule();
      group = g;
    }
    const auto prog = bench::compile_app_cached(app);
    const std::string sizes =
        std::to_string(app.data_elements(app.problem_sizes.front())) + " - " +
        std::to_string(app.data_elements(app.problem_sizes.back()));
    table.add_row({app.name, app.description, sizes, std::to_string(prog->node_count)});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}
