// table2_accuracy — regenerates paper Table 2: accuracy of the performance
// prediction framework. For every application the problem size and system
// size are swept, estimated (interpreted) times are compared with the
// simulated-measured times, and min/max absolute errors are reported as
// percentages of the measured time.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  const bool full = bench::full_sweep();
  std::printf("Table 2: Accuracy of the Performance Prediction Framework%s\n",
              full ? " (full sweep)" : " (trimmed sweep; FULL=1 for the paper sweep)");

  support::TextTable table({"Name", "Problem Sizes", "System Size", "Min Abs Error",
                            "Max Abs Error", "Within Variance"});
  double global_worst = 0;
  for (const auto& app : suite::validation_suite()) {
    const auto prog = bench::compile_app(app);
    std::vector<driver::SweepPoint> sweep;
    for (long long size : app.problem_sizes) {
      // trim the most expensive functional simulations unless FULL=1
      if (!full && app.id == "nbody" && size > 256) continue;
      if (!full && app.id != "nbody" && size > 2048) continue;
      for (int nprocs : suite::paper_system_sizes()) {
        driver::SweepPoint pt;
        pt.problem_size = app.data_elements(size);
        pt.nprocs = nprocs;
        pt.comparison =
            bench::framework().compare(prog, bench::config_for(app, size, nprocs));
        sweep.push_back(pt);
      }
    }
    const auto row = driver::AccuracyRow::from_sweep(app.name, sweep);
    global_worst = std::max(global_worst, row.max_abs_error_pct);
    table.add_row({row.name, row.sizes, row.procs,
                   support::strfmt("%.2f%%", row.min_abs_error_pct),
                   support::strfmt("%.2f%%", row.max_abs_error_pct),
                   support::strfmt("%d/%d", row.within_variance, row.points)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("worst-case interpreted-vs-measured error: %.2f%% "
              "(paper: within 20%% worst case, 18.6%% max row)\n",
              global_worst);
  return 0;
}
