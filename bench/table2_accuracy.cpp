// table2_accuracy — regenerates paper Table 2: accuracy of the performance
// prediction framework. Every application becomes one ExperimentPlan (its
// problem-size x system-size cross product) executed batched through the
// shared session; estimated (interpreted) times are compared with the
// simulated-measured times, and min/max absolute errors are reported as
// percentages of the measured time.
#include <cstdio>

#include "bench_util.hpp"
#include "driver/report.hpp"
#include "support/table.hpp"
#include "support/text.hpp"

int main() {
  using namespace hpf90d;
  const bool full = bench::full_sweep();
  std::printf("Table 2: Accuracy of the Performance Prediction Framework%s\n",
              full ? " (full sweep)" : " (trimmed sweep; FULL=1 for the paper sweep)");

  support::TextTable table({"Name", "Problem Sizes", "System Size", "Min Abs Error",
                            "Max Abs Error", "Within Variance"});
  double global_worst = 0;
  for (const auto& app : suite::validation_suite()) {
    std::vector<long long> sizes;
    for (long long size : app.problem_sizes) {
      // trim the most expensive functional simulations unless FULL=1
      if (!full && app.id == "nbody" && size > 256) continue;
      if (!full && app.id != "nbody" && size > 2048) continue;
      sizes.push_back(size);
    }

    api::ExperimentPlan plan(app.name);
    plan.source(app.source)
        .nprocs(suite::paper_system_sizes())
        .add_variant(bench::variant_for(app))
        .problems_from(sizes, app.bindings);
    const api::RunReport report = bench::session().run(plan);

    // records iterate problems then nprocs (single machine, single variant)
    const std::size_t per_size = suite::paper_system_sizes().size();
    std::vector<driver::SweepPoint> sweep;
    for (std::size_t i = 0; i < report.records.size(); ++i) {
      driver::SweepPoint pt;
      pt.problem_size = app.data_elements(sizes[i / per_size]);
      pt.nprocs = report.records[i].nprocs;
      pt.comparison = report.records[i].comparison;
      sweep.push_back(pt);
    }
    const auto row = driver::AccuracyRow::from_sweep(app.name, sweep);
    global_worst = std::max(global_worst, row.max_abs_error_pct);
    table.add_row({row.name, row.sizes, row.procs,
                   support::strfmt("%.2f%%", row.min_abs_error_pct),
                   support::strfmt("%.2f%%", row.max_abs_error_pct),
                   support::strfmt("%d/%d", row.within_variance, row.points)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("worst-case interpreted-vs-measured error: %.2f%% "
              "(paper: within 20%% worst case, 18.6%% max row)\n",
              global_worst);
  const auto& stats = bench::session().cache_stats();
  std::printf("session caches: compile %zu hit / %zu miss, layout %zu hit / %zu miss\n",
              stats.compile_hits, stats.compile_misses, stats.layout_hits,
              stats.layout_misses);
  return 0;
}
