// bench_sweep — Google-benchmark harness for the sweep execution core.
//
// The paper's §7 design studies run thousands of what-if points through the
// interpretation engine; this harness pins down the tool-side throughput of
// exactly that loop (predict-only sweep points through Session::run) along
// the axes this repo has been optimizing:
//
//   * cold vs warm caches   — first-contact compile/layout cost vs the
//                             steady state a long-lived sweep service sees,
//   * serial vs worker pool — RunOptions::workers,
//   * engine arenas on/off  — RunOptions::reuse_engines; "off" is PR 2's
//                             per-point engine construction, kept as the
//                             baseline the arena path is measured against,
//   * bounded layout store  — RunOptions::layout_cache_capacity under
//                             eviction pressure.
//
// Note on baselines: the `per_point` variants re-enact PR 2's control flow
// (fresh engines per point, per-point critical-variable checks, two layout
// lookups per measured point) but still benefit from this PR's engine-
// internal work (exception-free value probing, cached op counts,
// precomputed coords), so they UNDERSTATE the delta. The acceptance
// comparison against the real pre-PR binary is recorded in the committed
// BENCH_sweep.json context (pre_pr_baseline_us_per_point) and in the
// README's sweep-performance table. BM_ArenaSpeedup reports the in-tree
// arena-vs-per-point ratio as the `speedup` counter.
//
// Run:  bench_sweep --benchmark_out=BENCH_sweep.json --benchmark_out_format=json
// (the harness injects those flags itself when none are given, so a bare
// `bench_sweep` also leaves BENCH_sweep.json behind; SWEEP_POINTS in the
// environment scales the plan for smoke runs, default 1000).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "compiler/cost_program.hpp"
#include "compiler/pipeline.hpp"
#include "suite/suite.hpp"

namespace {

using namespace hpf90d;

long long sweep_points() {
  if (const char* v = std::getenv("SWEEP_POINTS")) {
    const long long n = std::atoll(v);
    if (n >= 4) return n;
  }
  return 1000;
}

/// Predict-only plan with `points` sweep points: pi (pure forall + global
/// sum, no data-dependent control flow — the interpretation itself is
/// analytic, so the per-point framework overhead is what dominates) across
/// distinct problem sizes x {1,2,4,8} processors. Every point is a distinct
/// layout-cache key.
api::ExperimentPlan sweep_plan(long long points) {
  const auto& app = suite::app("pi");
  const long long problems = (points + 3) / 4;
  std::vector<long long> sizes;
  sizes.reserve(static_cast<std::size_t>(problems));
  for (long long i = 0; i < problems; ++i) sizes.push_back(16 + 4 * i);
  api::ExperimentPlan plan("sweep throughput");
  plan.source(app.source).nprocs({1, 2, 4, 8}).problems_from(sizes, app.bindings).runs(0);
  return plan;
}

api::RunOptions options(int workers, bool arenas) {
  api::RunOptions opts;
  opts.workers = workers;
  opts.reuse_engines = arenas;
  return opts;
}

/// Shared warmed session: one full pass populates the compile cache and the
/// content-addressed layout store, so warm benchmarks measure pure sweep
/// execution.
api::Session& warm_session(const api::ExperimentPlan& plan) {
  static api::Session session;
  static bool warmed = false;
  if (!warmed) {
    (void)session.run(plan, options(1, true));
    warmed = true;
  }
  return session;
}

void BM_ColdSweep_serial(benchmark::State& state) {
  const api::ExperimentPlan plan = sweep_plan(sweep_points());
  for (auto _ : state) {
    api::Session session;  // cold: compiles + builds every layout
    benchmark::DoNotOptimize(session.run(plan, options(1, true)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK(BM_ColdSweep_serial)->Unit(benchmark::kMillisecond);

void BM_WarmSweep(benchmark::State& state, int workers, bool arenas) {
  const api::ExperimentPlan plan = sweep_plan(sweep_points());
  api::Session& session = warm_session(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(plan, options(workers, arenas)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK_CAPTURE(BM_WarmSweep, serial_arena, 1, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep, serial_per_point, 1, false)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep, pooled4_arena, 4, true)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep, pooled4_per_point, 4, false)->Unit(benchmark::kMillisecond);

void BM_WarmSweep_pooled4_arena_lru256(benchmark::State& state) {
  // Eviction pressure: 1000 distinct layouts through a 256-entry bound —
  // every point rebuilds its layout, the worst case for the LRU path.
  const api::ExperimentPlan plan = sweep_plan(sweep_points());
  api::Session session;
  api::RunOptions opts = options(4, true);
  opts.layout_cache_capacity = 256;
  (void)session.run(plan, opts);  // warm the compile cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(plan, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK(BM_WarmSweep_pooled4_arena_lru256)->Unit(benchmark::kMillisecond);

// --- lockstep batching --------------------------------------------------------

/// Warm sweep at a fixed lane width: batch_size=1 is the scalar arena path
/// (the pre-batching baseline), 8 and 64 price points in lockstep through
/// the cost bytecode. The `lanes_per_visit` counter reports how many lanes
/// each SPMD node visit actually amortized.
void BM_WarmSweep_lanes(benchmark::State& state, int lanes, int workers) {
  const api::ExperimentPlan plan = sweep_plan(sweep_points());
  api::Session& session = warm_session(plan);
  api::RunOptions opts = options(workers, true);
  opts.batch_size = lanes;
  double lanes_per_visit = 0;
  for (auto _ : state) {
    const api::RunReport report = session.run(plan, opts);
    benchmark::DoNotOptimize(&report);
    lanes_per_visit = report.batch.mean_lanes_per_visit();
  }
  state.counters["lanes_per_visit"] = lanes_per_visit;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK_CAPTURE(BM_WarmSweep_lanes, lanes1_serial, 1, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep_lanes, lanes8_serial, 8, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep_lanes, lanes64_serial, 64, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_WarmSweep_lanes, lanes64_pooled4, 64, 4)->Unit(benchmark::kMillisecond);

void BM_CompileToBytecode(benchmark::State& state) {
  // The cold cost of the flattening pass alone: compile() already pays it
  // once per program; this is the marginal price of the batched design.
  const auto& app = suite::app("pi");
  const compiler::CompiledProgram prog = compiler::compile(app.source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::compile_cost_program(prog));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompileToBytecode)->Unit(benchmark::kMicrosecond);

void BM_DivergentSweep_lanes(benchmark::State& state, int lanes,
                             bool compact = true) {
  // Worst case for lockstep: the outer DO trip count is a per-problem
  // binding, so a 64-lane chunk splinters at the first size-dependent
  // loop. With compact_lanes (the default) the evicted lanes re-batch by
  // divergence key into lockstep refill windows (and stragglers cross
  // chunks through the session pool); with it off they all fall to the
  // scalar replay. The `replayed` counter is the fraction of points
  // finally priced scalar, `refilled` the fraction of evictions recovered
  // into refill windows, `pooled` the fraction recovered cross-chunk.
  static const char* const source = R"f90(
program levels
  parameter (n = 256)
  real v(n)
!hpf$ template d(n)
!hpf$ align v(i) with d(i)
!hpf$ distribute d(block)
  forall (i = 1:n) v(i) = real(i)
  do it = 1, nlev
    forall (i = 1:n) v(i) = v(i)*0.5 + 1.0
  end do
end program levels
)f90";
  const long long problems = (sweep_points() + 3) / 4;
  api::ExperimentPlan plan("divergent sweep");
  plan.source(source).nprocs({1, 2, 4, 8}).runs(0);
  for (long long i = 0; i < problems; ++i) {
    front::Bindings b;
    b.set_int("nlev", 2 + (i % 13));
    plan.add_problem("nlev@" + std::to_string(i), b);
  }
  static api::Session session;  // warm across captures, like warm_session
  static bool warmed = false;
  api::RunOptions opts = options(1, true);
  if (!warmed) {
    (void)session.run(plan, opts);
    warmed = true;
  }
  opts.batch_size = lanes;
  opts.compact_lanes = compact;
  double replayed_points = 0, evicted_lanes = 0, refilled_lanes = 0;
  double pooled_lanes = 0, total_points = 0;
  for (auto _ : state) {
    const api::RunReport report = session.run(plan, opts);
    benchmark::DoNotOptimize(&report);
    replayed_points += static_cast<double>(report.batch.replayed_points);
    evicted_lanes += static_cast<double>(report.batch.evicted_lanes);
    refilled_lanes += static_cast<double>(report.batch.refilled_lanes);
    pooled_lanes += static_cast<double>(report.batch.pooled_lanes);
    total_points += static_cast<double>(plan.point_count());
  }
  // proper counters summed over every iteration (not the last run's
  // snapshot), reported as fractions of their own denominators
  state.counters["replayed"] = benchmark::Counter(
      total_points == 0 ? 0.0 : replayed_points / total_points);
  state.counters["refilled"] = benchmark::Counter(
      evicted_lanes == 0 ? 0.0 : refilled_lanes / evicted_lanes);
  state.counters["pooled"] = benchmark::Counter(
      evicted_lanes == 0 ? 0.0 : pooled_lanes / evicted_lanes);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK_CAPTURE(BM_DivergentSweep_lanes, lanes1, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DivergentSweep_lanes, lanes64, 64)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_DivergentSweep_lanes, lanes64_compaction_off, 64, false)
    ->Unit(benchmark::kMillisecond);

void BM_MeasuredSweep_lanes(benchmark::State& state, int lanes) {
  // Measured points (runs > 0) dominate real Table-2 style sweeps; the
  // lockstep measurement path (Simulator::measure_batch_into on top of
  // Executor::rebind_run) shares per-run rebind work across the batch.
  // An eighth of the predict-only point count keeps the wall time
  // comparable to the other captures.
  const long long points = std::max(16LL, sweep_points() / 8);
  api::ExperimentPlan plan = sweep_plan(points);
  plan.runs(2);
  static api::Session session;  // warm across captures, like warm_session
  static bool warmed = false;
  api::RunOptions opts = options(1, true);
  if (!warmed) {
    (void)session.run(plan, opts);
    warmed = true;
  }
  opts.batch_size = lanes;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run(plan, opts));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK_CAPTURE(BM_MeasuredSweep_lanes, lanes1, 1)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MeasuredSweep_lanes, lanes64, 64)->Unit(benchmark::kMillisecond);

void BM_ArenaSpeedup_pooled4(benchmark::State& state) {
  // The acceptance ratio, measured back to back on the same warm session:
  // per-point engines (PR 2's hot path) vs per-worker arenas.
  const api::ExperimentPlan plan = sweep_plan(sweep_points());
  api::Session& session = warm_session(plan);
  double arena_s = 0, per_point_s = 0;
  for (auto _ : state) {
    per_point_s += session.run(plan, options(4, false)).wall_seconds;
    arena_s += session.run(plan, options(4, true)).wall_seconds;
  }
  state.counters["speedup"] = per_point_s / arena_s;
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<int64_t>(plan.point_count()));
}
BENCHMARK(BM_ArenaSpeedup_pooled4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to leaving BENCH_sweep.json behind so every invocation records
  // the perf trajectory; explicit --benchmark_out wins.
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_sweep.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
